package encoding

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/coldata"
	"repro/internal/gmm"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Storage locates a party's gtvcol files inside a data directory. Two
// files exist per party: <Name>.raw.gtvcol holds the raw columns (plus
// specs and a source tag), <Name>.enc.gtvcol holds the encoded training
// matrix (plus the fitted transformer and an encode fingerprint). A zero
// Dir disables the store and keeps everything in memory.
type Storage struct {
	// Dir is the data directory; empty disables on-disk backing.
	Dir string
	// Name is the per-party file stem, e.g. "central" or "client-0".
	Name string
	// CacheBytes bounds each reader's decoded-block cache
	// (0 = coldata.DefaultCacheBytes).
	CacheBytes int64
	// BlockRows overrides the stripe height (0 = coldata.DefaultBlockRows).
	BlockRows int
}

// Enabled reports whether the storage points at a data directory.
func (st Storage) Enabled() bool { return st.Dir != "" }

// RawPath returns the raw-table file path.
func (st Storage) RawPath() string { return filepath.Join(st.Dir, st.Name+".raw.gtvcol") }

// EncPath returns the encoded-matrix file path.
func (st Storage) EncPath() string { return filepath.Join(st.Dir, st.Name+".enc.gtvcol") }

// EncodeSeed derives the dedicated fit/transform RNG seed from a party's
// training seed. Encoding consumes its own stream so that a run which
// reuses a cached .enc.gtvcol (and therefore never fits or transforms)
// leaves the model stream untouched and follows the exact training
// trajectory of a run that encoded from scratch.
func EncodeSeed(seed int64) int64 { return seed ^ 0x6774762d636f6c31 }

// Metadata blob names inside the gtvcol files.
const (
	metaSpecs       = "specs"
	metaSource      = "source"
	metaTransformer = "transformer"
	metaFingerprint = "fingerprint"
)

// colstoreCodecVersion versions the spec/transformer blob encoding; bump
// on any layout change so stale caches re-encode instead of misparsing.
const colstoreCodecVersion = 1

const maxCodecElems = 1 << 24

// --- binary blob codec -----------------------------------------------------

func appendUv(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// blobCursor reads the length-prefixed binary blobs colstore stores in
// gtvcol metadata, latching the first error.
type blobCursor struct {
	b   []byte
	err error
}

func (c *blobCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("encoding: "+format, args...)
	}
}

func (c *blobCursor) uv() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail("truncated varint in stored blob")
		return 0
	}
	c.b = c.b[n:]
	return v
}

// count reads a uvarint bounded by maxCodecElems, rejecting hostile
// lengths before they size an allocation.
func (c *blobCursor) count(what string) int {
	v := c.uv()
	if v > maxCodecElems {
		c.fail("stored blob %s count %d out of bounds", what, v)
		return 0
	}
	return int(v)
}

func (c *blobCursor) str(what string) string {
	n := c.count(what)
	if c.err != nil || n > len(c.b) {
		c.fail("truncated %s in stored blob", what)
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}

func (c *blobCursor) f64() float64 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 8 {
		c.fail("truncated float in stored blob")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b))
	c.b = c.b[8:]
	return v
}

func (c *blobCursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("encoding: %d trailing bytes in stored blob", len(c.b))
	}
	return nil
}

// --- spec codec ------------------------------------------------------------

func appendSpec(b []byte, s *ColumnSpec) []byte {
	b = appendUv(b, uint64(len(s.Name)))
	b = append(b, s.Name...)
	b = appendUv(b, uint64(s.Kind))
	b = appendUv(b, uint64(len(s.Categories)))
	for _, cat := range s.Categories {
		b = appendUv(b, uint64(len(cat)))
		b = append(b, cat...)
	}
	b = appendUv(b, uint64(len(s.SpecialValues)))
	for _, v := range s.SpecialValues {
		b = appendF64(b, v)
	}
	return b
}

func readSpec(c *blobCursor) ColumnSpec {
	var s ColumnSpec
	s.Name = c.str("spec name")
	s.Kind = ColumnKind(c.uv())
	if n := c.count("categories"); c.err == nil && n > 0 {
		s.Categories = make([]string, n)
		for i := range s.Categories {
			s.Categories[i] = c.str("category label")
		}
	}
	if n := c.count("special values"); c.err == nil && n > 0 {
		s.SpecialValues = make([]float64, n)
		for i := range s.SpecialValues {
			s.SpecialValues[i] = c.f64()
		}
	}
	return s
}

func encodeSpecs(specs []ColumnSpec) []byte {
	b := appendUv(nil, colstoreCodecVersion)
	b = appendUv(b, uint64(len(specs)))
	for i := range specs {
		b = appendSpec(b, &specs[i])
	}
	return b
}

func decodeSpecs(blob []byte) ([]ColumnSpec, error) {
	c := &blobCursor{b: blob}
	if v := c.uv(); c.err == nil && v != colstoreCodecVersion {
		return nil, fmt.Errorf("encoding: stored specs codec version %d, want %d", v, colstoreCodecVersion)
	}
	specs := make([]ColumnSpec, c.count("columns"))
	for i := range specs {
		specs[i] = readSpec(c)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// --- transformer codec -----------------------------------------------------

// encodeBinary serializes the fitted transformer: specs plus, per column,
// the GMM parameters as raw float64 bits. Spans and widths are layout,
// not state — decodeTransformer rebuilds them with buildLayout, the same
// routine FitTransformer uses, so a decoded transformer is functionally
// identical to the one that was fitted.
func (tr *Transformer) encodeBinary() []byte {
	b := appendUv(nil, colstoreCodecVersion)
	b = appendUv(b, uint64(len(tr.cols)))
	for j := range tr.cols {
		enc := &tr.cols[j]
		b = appendSpec(b, &enc.spec)
		if enc.mixture == nil {
			b = appendUv(b, 0)
			continue
		}
		b = appendUv(b, uint64(enc.mixture.K()))
		for _, v := range enc.mixture.Weights {
			b = appendF64(b, v)
		}
		for _, v := range enc.mixture.Means {
			b = appendF64(b, v)
		}
		for _, v := range enc.mixture.Stds {
			b = appendF64(b, v)
		}
	}
	return b
}

func decodeTransformer(blob []byte) (*Transformer, error) {
	c := &blobCursor{b: blob}
	if v := c.uv(); c.err == nil && v != colstoreCodecVersion {
		return nil, fmt.Errorf("encoding: stored transformer codec version %d, want %d", v, colstoreCodecVersion)
	}
	n := c.count("columns")
	tr := &Transformer{specs: make([]ColumnSpec, n), cols: make([]colEncoder, n)}
	for j := 0; j < n; j++ {
		spec := readSpec(c)
		enc := colEncoder{spec: spec}
		if k := c.count("mixture components"); k > 0 {
			m := gmm.Model{
				Weights: make([]float64, k),
				Means:   make([]float64, k),
				Stds:    make([]float64, k),
			}
			for i := range m.Weights {
				m.Weights[i] = c.f64()
			}
			for i := range m.Means {
				m.Means[i] = c.f64()
			}
			for i := range m.Stds {
				m.Stds[i] = c.f64()
			}
			enc.mixture = &m
		}
		if len(spec.SpecialValues) > 0 {
			enc.specialIdx = make(map[float64]int, len(spec.SpecialValues))
			for i, v := range spec.SpecialValues {
				enc.specialIdx[v] = i
			}
		}
		tr.specs[j] = spec
		tr.cols[j] = enc
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	for j := range tr.cols {
		enc := &tr.cols[j]
		if err := enc.spec.Validate(); err != nil {
			return nil, err
		}
		if (enc.spec.Kind != KindCategorical) != (enc.mixture != nil) {
			return nil, fmt.Errorf("encoding: stored transformer column %q mixture presence does not match kind", enc.spec.Name)
		}
	}
	tr.buildLayout()
	return tr, nil
}

// --- fingerprint -----------------------------------------------------------

// encodeFingerprint hashes everything that determines the encoded matrix:
// the encode seed, the GMM configuration, the row count and the column
// specs. A cached .enc.gtvcol is reused only when its recorded
// fingerprint matches, so stale caches (different data, seed or config)
// re-encode instead of silently training on the wrong matrix.
func encodeFingerprint(seed int64, cfg gmm.Config, rows int, specs []ColumnSpec) []byte {
	b := appendUv(nil, colstoreCodecVersion)
	b = binary.AppendVarint(b, seed)
	b = appendUv(b, uint64(rows))
	b = appendUv(b, uint64(cfg.MaxComponents))
	b = appendF64(b, cfg.WeightThreshold)
	b = appendUv(b, uint64(cfg.MaxIter))
	b = appendF64(b, cfg.Tol)
	b = appendUv(b, uint64(len(specs)))
	for i := range specs {
		b = appendSpec(b, &specs[i])
	}
	sum := sha256.Sum256(b)
	return sum[:]
}

// --- columnar backing ------------------------------------------------------

// colBacking serves a party's encoded matrix out of an immutable gtvcol
// file. Shuffling composes a logical-to-physical row view instead of
// rewriting the file, so training-with-shuffling works over data that
// never moves on disk; resident memory stays bounded by the reader's
// block cache plus the 4-byte-per-row view.
type colBacking struct {
	// r reads the encoded real rows; everything it serves is exactly as
	// sensitive as the in-memory encoded matrix it replaces.
	//privacy:source client encoded matrix (on-disk columnar store)
	r *coldata.Reader
	// view maps logical row k to its physical file row; nil is identity.
	view []int32
	// idxBuf is the reusable physical-index scratch for GatherRows.
	idxBuf []int32
}

// Rows implements Backing.
func (b *colBacking) Rows() int { return b.r.Rows() }

// Width implements Backing.
func (b *colBacking) Width() int { return b.r.Cols() }

// GatherRows implements Backing: the batch is gathered straight from
// cached compact blocks into a pooled matrix the caller must Release.
//
//shape: out(N,W)
func (b *colBacking) GatherRows(idx []int) (*tensor.Dense, error) {
	if cap(b.idxBuf) < len(idx) {
		b.idxBuf = make([]int32, len(idx))
	}
	phys := b.idxBuf[:len(idx)]
	for k, i := range idx {
		if i < 0 || i >= b.r.Rows() {
			return nil, fmt.Errorf("encoding: gather row %d out of range %d", i, b.r.Rows())
		}
		if b.view != nil {
			phys[k] = b.view[i]
		} else {
			phys[k] = int32(i)
		}
	}
	dst := tensor.NewPooledUninit(len(idx), b.r.Cols())
	if err := b.r.GatherRowsInto(phys, dst); err != nil {
		dst.Release()
		return nil, err
	}
	return dst, nil
}

// Dense implements Backing by expanding the whole file into a pooled
// matrix (owned by the caller). This is the memory-heavy escape hatch the
// faithful real pass needs; batched training never calls it.
//
//shape: out(R,W)
func (b *colBacking) Dense() (*tensor.Dense, bool, error) {
	rows, cols := b.r.Rows(), b.r.Cols()
	// inv sends physical file row p to its logical position.
	var inv []int32
	if b.view != nil {
		inv = make([]int32, rows)
		for k, p := range b.view {
			inv[p] = int32(k)
		}
	}
	m := tensor.NewPooledUninit(rows, cols)
	err := b.r.ScanStripes(func(first int, block *tensor.Dense) error {
		for i := 0; i < block.Rows(); i++ {
			at := first + i
			if inv != nil {
				at = int(inv[first+i])
			}
			copy(m.RawRow(at), block.RawRow(i))
		}
		return nil
	})
	if err != nil {
		m.Release()
		return nil, false, err
	}
	return m, true, nil
}

// Shuffle implements Backing by composing the permutation into the view.
func (b *colBacking) Shuffle(perm []int) error {
	rows := b.r.Rows()
	if len(perm) != rows {
		return fmt.Errorf("encoding: shuffle permutation length %d for %d rows", len(perm), rows)
	}
	next := make([]int32, rows)
	for k, p := range perm {
		if p < 0 || p >= rows {
			return fmt.Errorf("encoding: invalid permutation entry %d", p)
		}
		if b.view != nil {
			next[k] = b.view[p]
		} else {
			next[k] = int32(p)
		}
	}
	b.view = next
	return nil
}

// Close implements Backing.
func (b *colBacking) Close() error { return b.r.Close() }

// --- encode/open -----------------------------------------------------------

// OpenOrEncode produces a party's fitted transformer and encoded-matrix
// backing. With storage disabled it fits and transforms in memory exactly
// as the trainers always have. With storage enabled it reuses
// <Name>.enc.gtvcol when the recorded fingerprint matches (skipping GMM
// fitting and encoding entirely), or encodes once — streaming stripe by
// stripe, never holding the full encoded matrix — and atomically installs
// the file for the next run. Both paths consume the dedicated
// EncodeSeed stream, so in-memory, freshly encoded and cache-hit runs all
// train bit-identically from the same seed.
func OpenOrEncode(st Storage, t *Table, seed int64, cfg gmm.Config) (*Transformer, Backing, error) {
	if !st.Enabled() {
		encRng := rng.New(EncodeSeed(seed))
		tr, err := FitTransformer(encRng.Rand, t, cfg)
		if err != nil {
			return nil, nil, err
		}
		enc, err := tr.Transform(encRng.Rand, t)
		if err != nil {
			return nil, nil, err
		}
		return tr, NewDenseBacking(enc), nil
	}
	fp := encodeFingerprint(seed, cfg, t.Rows(), t.Specs)
	if r, err := coldata.Open(st.EncPath(), st.CacheBytes); err == nil {
		if bytes.Equal(r.Meta(metaFingerprint), fp) && r.Rows() == t.Rows() {
			if tr, err := decodeTransformer(r.Meta(metaTransformer)); err == nil && tr.Width() == r.Cols() {
				return tr, &colBacking{r: r}, nil
			}
		}
		// Stale cache (different seed, config or data): fall through and
		// re-encode over it.
		//lint:ignore errdrop a close failure on a stale cache cannot affect the re-encode
		_ = r.Close()
	}

	encRng := rng.New(EncodeSeed(seed))
	tr, err := FitTransformer(encRng.Rand, t, cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(st.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	tmp := st.EncPath() + ".tmp"
	w, err := coldata.Create(tmp, tr.Width(), st.BlockRows)
	if err != nil {
		return nil, nil, err
	}
	werr := w.SetMeta(metaFingerprint, fp)
	if werr == nil {
		werr = w.SetMeta(metaTransformer, tr.encodeBinary())
	}
	if werr == nil {
		werr = tr.TransformTo(encRng.Rand, t, w.AppendRow)
	}
	if werr == nil {
		werr = w.Close()
	} else {
		//lint:ignore errdrop the encode error already describes the failure; the temp file is removed
		_ = w.Close()
	}
	if werr == nil {
		werr = os.Rename(tmp, st.EncPath())
	}
	if werr != nil {
		//lint:ignore errdrop best-effort cleanup of the temp file
		_ = os.Remove(tmp)
		return nil, nil, fmt.Errorf("encoding: writing %s: %w", tmp, werr)
	}
	r, err := coldata.Open(st.EncPath(), st.CacheBytes)
	if err != nil {
		return nil, nil, err
	}
	return tr, &colBacking{r: r}, nil
}

// WriteRawTable writes t's raw columns, specs and a source tag to
// st.RawPath() (atomically, via a temp file). The tag lets a rerun decide
// whether the stored rows are the ones it would regenerate.
func WriteRawTable(st Storage, t *Table, sourceTag string) error {
	if !st.Enabled() {
		return fmt.Errorf("encoding: WriteRawTable requires a data directory")
	}
	if err := os.MkdirAll(st.Dir, 0o755); err != nil {
		return err
	}
	tmp := st.RawPath() + ".tmp"
	w, err := coldata.Create(tmp, t.Cols(), st.BlockRows)
	if err != nil {
		return err
	}
	werr := w.SetMeta(metaSpecs, encodeSpecs(t.Specs))
	if werr == nil {
		werr = w.SetMeta(metaSource, []byte(sourceTag))
	}
	if werr == nil {
		werr = t.ScanRows(func(_ int, row []float64) error { return w.AppendRow(row) })
	}
	if werr == nil {
		werr = w.Close()
	} else {
		//lint:ignore errdrop the write error already describes the failure; the temp file is removed
		_ = w.Close()
	}
	if werr == nil {
		werr = os.Rename(tmp, st.RawPath())
	}
	if werr != nil {
		//lint:ignore errdrop best-effort cleanup of the temp file
		_ = os.Remove(tmp)
		return fmt.Errorf("encoding: writing %s: %w", tmp, werr)
	}
	return nil
}

// OpenRawTable opens st.RawPath() as a stored Table whose columns are
// read through the block cache on demand. The returned tag is what
// WriteRawTable recorded; callers compare it before trusting the rows.
func OpenRawTable(st Storage) (*Table, string, error) {
	r, err := coldata.Open(st.RawPath(), st.CacheBytes)
	if err != nil {
		return nil, "", err
	}
	specs, err := decodeSpecs(r.Meta(metaSpecs))
	if err != nil {
		//lint:ignore errdrop the decode error is the one worth reporting
		_ = r.Close()
		return nil, "", err
	}
	t, err := NewStoredTable(specs, r)
	if err != nil {
		//lint:ignore errdrop the construction error is the one worth reporting
		_ = r.Close()
		return nil, "", err
	}
	return t, string(r.Meta(metaSource)), nil
}
