package encoding

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := sampleTable(t, rng, 40)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, tbl.Specs)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !back.Data.AllClose(tbl.Data, 1e-12) {
		t.Fatal("CSV round trip changed data")
	}
}

func TestCSVHeaderHasLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := sampleTable(t, rng, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "gender,income,mortgage") {
		t.Fatalf("header = %q", strings.SplitN(out, "\n", 2)[0])
	}
	// Categorical cells must carry labels, not indices.
	if !strings.Contains(out, "M") && !strings.Contains(out, "F") {
		t.Fatal("categorical labels missing from CSV body")
	}
}

func TestReadCSVErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := sampleTable(t, rng, 3)
	tests := []struct {
		name string
		csv  string
	}{
		{"wrong header", "a,b,c\nM,1,2\n"},
		{"unknown category", "gender,income,mortgage\nX,1,2\n"},
		{"bad float", "gender,income,mortgage\nM,abc,2\n"},
		{"no rows", "gender,income,mortgage\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.csv), tbl.Specs); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
