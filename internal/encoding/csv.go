package encoding

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/tensor"
)

// WriteCSV writes the table with a header row. Categorical cells are
// rendered with their category labels; numeric cells with full float
// precision.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Cols())
	for j, s := range t.Specs {
		header[j] = s.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("encoding: writing CSV header: %w", err)
	}
	record := make([]string, t.Cols())
	for i := 0; i < t.Rows(); i++ {
		row := t.Data.RawRow(i)
		for j, s := range t.Specs {
			if s.Kind == KindCategorical {
				record[j] = s.Categories[int(row[j])]
			} else {
				record[j] = strconv.FormatFloat(row[j], 'g', -1, 64)
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("encoding: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("encoding: flushing CSV: %w", err)
	}
	return nil
}

// ReadCSV reads a table written by WriteCSV given the column specs. The
// header row must match the spec names in order.
func ReadCSV(r io.Reader, specs []ColumnSpec) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("encoding: reading CSV header: %w", err)
	}
	if len(header) != len(specs) {
		return nil, fmt.Errorf("encoding: CSV has %d columns, specs have %d", len(header), len(specs))
	}
	for j, s := range specs {
		if header[j] != s.Name {
			return nil, fmt.Errorf("encoding: CSV column %d is %q, spec says %q", j, header[j], s.Name)
		}
	}
	catIndex := make([]map[string]int, len(specs))
	for j, s := range specs {
		if s.Kind == KindCategorical {
			catIndex[j] = make(map[string]int, len(s.Categories))
			for k, c := range s.Categories {
				catIndex[j][c] = k
			}
		}
	}
	var rows [][]float64
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("encoding: reading CSV line %d: %w", line, err)
		}
		row := make([]float64, len(specs))
		for j, s := range specs {
			if s.Kind == KindCategorical {
				k, ok := catIndex[j][record[j]]
				if !ok {
					return nil, fmt.Errorf("encoding: CSV line %d: unknown category %q in column %q", line, record[j], s.Name)
				}
				row[j] = float64(k)
			} else {
				v, err := strconv.ParseFloat(record[j], 64)
				if err != nil {
					return nil, fmt.Errorf("encoding: CSV line %d column %q: %w", line, s.Name, err)
				}
				row[j] = v
			}
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("encoding: CSV has no data rows")
	}
	data := make([]float64, 0, len(rows)*len(specs))
	for _, r := range rows {
		data = append(data, r...)
	}
	return NewTable(specs, tensor.FromSlice(len(rows), len(specs), data))
}
