// Package encoding implements the tabular feature engineering used by
// CTGAN/CTAB-GAN and therefore by GTV: one-hot encoding for categorical
// columns, mode-specific normalization (via a per-column Gaussian mixture)
// for continuous columns, and the mixed-type encoder for columns that hold
// both special discrete values and a continuous part. A fitted Transformer
// maps raw tables to the GAN's training representation and back.
package encoding

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ColumnKind classifies a raw table column.
type ColumnKind int

// Column kinds.
const (
	// KindCategorical columns hold one of a finite set of categories,
	// stored as 0-based category indices.
	KindCategorical ColumnKind = iota + 1
	// KindContinuous columns hold real values.
	KindContinuous
	// KindMixed columns hold real values interleaved with special discrete
	// values (e.g. 0 meaning "no mortgage"), per the CTAB-GAN encoder.
	KindMixed
)

// String returns a human-readable kind name.
func (k ColumnKind) String() string {
	switch k {
	case KindCategorical:
		return "categorical"
	case KindContinuous:
		return "continuous"
	case KindMixed:
		return "mixed"
	default:
		return fmt.Sprintf("ColumnKind(%d)", int(k))
	}
}

// ColumnSpec describes one raw column.
type ColumnSpec struct {
	Name string
	Kind ColumnKind
	// Categories names the categories of a categorical column; cells store
	// indices into this slice. Required for KindCategorical.
	Categories []string
	// SpecialValues lists the discrete special values of a mixed column.
	// Required (non-empty) for KindMixed.
	SpecialValues []float64
}

// NumCategories returns the category count of a categorical column.
func (s *ColumnSpec) NumCategories() int { return len(s.Categories) }

// Validate checks internal consistency of the spec.
func (s *ColumnSpec) Validate() error {
	switch s.Kind {
	case KindCategorical:
		if len(s.Categories) < 1 {
			return fmt.Errorf("encoding: categorical column %q has no categories", s.Name)
		}
	case KindContinuous:
		// nothing extra
	case KindMixed:
		if len(s.SpecialValues) == 0 {
			return fmt.Errorf("encoding: mixed column %q has no special values", s.Name)
		}
	default:
		return fmt.Errorf("encoding: column %q has invalid kind %d", s.Name, int(s.Kind))
	}
	return nil
}

// Table is a raw tabular dataset: one float64 cell per row and column.
// Categorical cells store 0-based category indices.
type Table struct {
	Specs []ColumnSpec
	//shape: (R,C)
	Data *tensor.Dense
}

// NewTable validates and wraps specs+data into a Table.
//
//shape: in(R,C)
func NewTable(specs []ColumnSpec, data *tensor.Dense) (*Table, error) {
	if data.Cols() != len(specs) {
		return nil, fmt.Errorf("encoding: %d specs for %d data columns", len(specs), data.Cols())
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < data.Rows(); i++ {
		row := data.RawRow(i)
		for j := range specs {
			v := row[j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("encoding: row %d column %q is not finite", i, specs[j].Name)
			}
			if specs[j].Kind == KindCategorical {
				//lint:ignore floateq category indices must be exactly integral; Trunc round-trip is the intended exactness test
				if v != math.Trunc(v) || v < 0 || int(v) >= len(specs[j].Categories) {
					return nil, fmt.Errorf("encoding: row %d column %q has invalid category index %v", i, specs[j].Name, v)
				}
			}
		}
	}
	return &Table{Specs: specs, Data: data}, nil
}

// Rows returns the number of rows. Row and column counts are shape
// metadata the protocol discloses by design (the server sizes batches and
// splits with them), not row values.
//
//privacy:sanitizer table shape metadata (row count)
func (t *Table) Rows() int { return t.Data.Rows() }

// Cols returns the number of columns.
//
//privacy:sanitizer table shape metadata (column count)
func (t *Table) Cols() int { return t.Data.Cols() }

// Column returns a copy of column j's raw values.
func (t *Table) Column(j int) []float64 { return t.Data.Col(j) }

// ColumnByName returns the index of the named column, or -1.
func (t *Table) ColumnByName(name string) int {
	for j := range t.Specs {
		if t.Specs[j].Name == name {
			return j
		}
	}
	return -1
}

// SelectColumns returns a new Table containing the given columns, in order.
func (t *Table) SelectColumns(cols []int) (*Table, error) {
	specs := make([]ColumnSpec, len(cols))
	mats := make([]*tensor.Dense, len(cols))
	for i, j := range cols {
		if j < 0 || j >= t.Cols() {
			return nil, fmt.Errorf("encoding: column index %d out of range %d", j, t.Cols())
		}
		specs[i] = t.Specs[j]
		mats[i] = t.Data.SliceCols(j, j+1)
	}
	return &Table{Specs: specs, Data: tensor.ConcatCols(mats...)}, nil
}

// SliceRows returns a new Table with rows [from, to).
func (t *Table) SliceRows(from, to int) *Table {
	return &Table{Specs: t.Specs, Data: t.Data.SliceRows(from, to)}
}

// GatherRows returns a new Table whose row k is t's row idx[k].
func (t *Table) GatherRows(idx []int) *Table {
	return &Table{Specs: t.Specs, Data: t.Data.GatherRows(idx)}
}

// ShuffleRows returns a new Table with rows permuted by perm.
func (t *Table) ShuffleRows(perm []int) *Table {
	return &Table{Specs: t.Specs, Data: t.Data.ShuffleRows(perm)}
}

// ConcatColumns horizontally joins tables that share a row count, as the
// server does when assembling the final synthetic dataset from per-client
// slices.
func ConcatColumns(tables ...*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, errors.New("encoding: no tables to concatenate")
	}
	rows := tables[0].Rows()
	var specs []ColumnSpec
	mats := make([]*tensor.Dense, 0, len(tables))
	for _, t := range tables {
		if t.Rows() != rows {
			return nil, fmt.Errorf("encoding: row count mismatch %d vs %d", t.Rows(), rows)
		}
		specs = append(specs, t.Specs...)
		mats = append(mats, t.Data)
	}
	return &Table{Specs: specs, Data: tensor.ConcatCols(mats...)}, nil
}

// VerticalSplit partitions the table's columns across parties according to
// assignment, where assignment[j] names the party owning column j. It
// returns one Table per party with the party's columns in original order.
func (t *Table) VerticalSplit(assignment []int, numParties int) ([]*Table, error) {
	if len(assignment) != t.Cols() {
		return nil, fmt.Errorf("encoding: assignment length %d for %d columns", len(assignment), t.Cols())
	}
	colsPer := make([][]int, numParties)
	for j, p := range assignment {
		if p < 0 || p >= numParties {
			return nil, fmt.Errorf("encoding: column %d assigned to invalid party %d", j, p)
		}
		colsPer[p] = append(colsPer[p], j)
	}
	out := make([]*Table, numParties)
	for p := range out {
		if len(colsPer[p]) == 0 {
			return nil, fmt.Errorf("encoding: party %d owns no columns", p)
		}
		sub, err := t.SelectColumns(colsPer[p])
		if err != nil {
			return nil, err
		}
		out[p] = sub
	}
	return out, nil
}
