// Package encoding implements the tabular feature engineering used by
// CTGAN/CTAB-GAN and therefore by GTV: one-hot encoding for categorical
// columns, mode-specific normalization (via a per-column Gaussian mixture)
// for continuous columns, and the mixed-type encoder for columns that hold
// both special discrete values and a continuous part. A fitted Transformer
// maps raw tables to the GAN's training representation and back.
package encoding

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/coldata"
	"repro/internal/tensor"
)

// ColumnKind classifies a raw table column.
type ColumnKind int

// Column kinds.
const (
	// KindCategorical columns hold one of a finite set of categories,
	// stored as 0-based category indices.
	KindCategorical ColumnKind = iota + 1
	// KindContinuous columns hold real values.
	KindContinuous
	// KindMixed columns hold real values interleaved with special discrete
	// values (e.g. 0 meaning "no mortgage"), per the CTAB-GAN encoder.
	KindMixed
)

// String returns a human-readable kind name.
func (k ColumnKind) String() string {
	switch k {
	case KindCategorical:
		return "categorical"
	case KindContinuous:
		return "continuous"
	case KindMixed:
		return "mixed"
	default:
		return fmt.Sprintf("ColumnKind(%d)", int(k))
	}
}

// ColumnSpec describes one raw column.
type ColumnSpec struct {
	Name string
	Kind ColumnKind
	// Categories names the categories of a categorical column; cells store
	// indices into this slice. Required for KindCategorical.
	Categories []string
	// SpecialValues lists the discrete special values of a mixed column.
	// Required (non-empty) for KindMixed.
	SpecialValues []float64
}

// NumCategories returns the category count of a categorical column.
func (s *ColumnSpec) NumCategories() int { return len(s.Categories) }

// Validate checks internal consistency of the spec.
func (s *ColumnSpec) Validate() error {
	switch s.Kind {
	case KindCategorical:
		if len(s.Categories) < 1 {
			return fmt.Errorf("encoding: categorical column %q has no categories", s.Name)
		}
	case KindContinuous:
		// nothing extra
	case KindMixed:
		if len(s.SpecialValues) == 0 {
			return fmt.Errorf("encoding: mixed column %q has no special values", s.Name)
		}
	default:
		return fmt.Errorf("encoding: column %q has invalid kind %d", s.Name, int(s.Kind))
	}
	return nil
}

// Table is a raw tabular dataset: one float64 cell per row and column.
// Categorical cells store 0-based category indices. A Table is backed
// either by an in-memory matrix (Data) or by an on-disk gtvcol file
// (src, via NewStoredTable) — stored tables serve Rows/Cols/Column/
// ScanRows through a bounded block cache and reject the row-rearranging
// operations that need the whole matrix resident.
type Table struct {
	Specs []ColumnSpec
	//shape: (R,C)
	Data *tensor.Dense
	// src serves a stored table's cells straight from its gtvcol file;
	// Data is nil in that case.
	src *coldata.Reader
}

// NewTable validates and wraps specs+data into a Table.
//
//shape: in(R,C)
func NewTable(specs []ColumnSpec, data *tensor.Dense) (*Table, error) {
	if data.Cols() != len(specs) {
		return nil, fmt.Errorf("encoding: %d specs for %d data columns", len(specs), data.Cols())
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < data.Rows(); i++ {
		row := data.RawRow(i)
		for j := range specs {
			v := row[j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("encoding: row %d column %q is not finite", i, specs[j].Name)
			}
			if specs[j].Kind == KindCategorical {
				//lint:ignore floateq category indices must be exactly integral; Trunc round-trip is the intended exactness test
				if v != math.Trunc(v) || v < 0 || int(v) >= len(specs[j].Categories) {
					return nil, fmt.Errorf("encoding: row %d column %q has invalid category index %v", i, specs[j].Name, v)
				}
			}
		}
	}
	return &Table{Specs: specs, Data: data}, nil
}

// NewStoredTable wraps an open gtvcol reader as a Table. Cell-level
// validation is skipped: the file's CRCs guarantee the bytes are the ones
// written, and WriteRawTable only ever stores already-validated tables.
// The caller transfers ownership of r; Close releases it.
func NewStoredTable(specs []ColumnSpec, r *coldata.Reader) (*Table, error) {
	if r.Cols() != len(specs) {
		return nil, fmt.Errorf("encoding: %d specs for %d stored columns", len(specs), r.Cols())
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &Table{Specs: specs, src: r}, nil
}

// Stored reports whether the table is backed by an on-disk gtvcol file.
func (t *Table) Stored() bool { return t.src != nil }

// Close releases a stored table's reader and block cache; it is a no-op
// for in-memory tables.
func (t *Table) Close() error {
	if t.src != nil {
		return t.src.Close()
	}
	return nil
}

// mustDense returns the in-memory matrix, panicking with a diagnosable
// message when the table is stored: the row-rearranging operations below
// would silently materialize the whole dataset otherwise.
func (t *Table) mustDense(op string) *tensor.Dense {
	if t.src != nil {
		panic(fmt.Sprintf("encoding: %s requires an in-memory table; stored tables support Rows/Cols/Column/ScanRows only", op))
	}
	return t.Data
}

// Rows returns the number of rows. Row and column counts are shape
// metadata the protocol discloses by design (the server sizes batches and
// splits with them), not row values.
//
//privacy:sanitizer table shape metadata (row count)
func (t *Table) Rows() int {
	if t.src != nil {
		return t.src.Rows()
	}
	return t.Data.Rows()
}

// Cols returns the number of columns.
//
//privacy:sanitizer table shape metadata (column count)
func (t *Table) Cols() int {
	if t.src != nil {
		return t.src.Cols()
	}
	return t.Data.Cols()
}

// Column returns a copy of column j's raw values. For stored tables the
// column is decoded from its compact blocks; a read failure panics (the
// file was CRC-validated at open, so mid-read corruption is not an error
// the caller can meaningfully handle).
func (t *Table) Column(j int) []float64 {
	if t.src != nil {
		col, err := t.src.Column(j)
		if err != nil {
			panic(fmt.Sprintf("encoding: reading stored column %d: %v", j, err))
		}
		return col
	}
	return t.Data.Col(j)
}

// ScanRows streams every row through fn in order. In-memory tables hand
// out their resident rows; stored tables decode stripe by stripe, so the
// peak footprint is one stripe regardless of table size. The row slice is
// only valid during the callback.
func (t *Table) ScanRows(fn func(i int, row []float64) error) error {
	if t.src != nil {
		return t.src.ScanStripes(func(first int, block *tensor.Dense) error {
			for i := 0; i < block.Rows(); i++ {
				if err := fn(first+i, block.RawRow(i)); err != nil {
					return err
				}
			}
			return nil
		})
	}
	for i := 0; i < t.Data.Rows(); i++ {
		if err := fn(i, t.Data.RawRow(i)); err != nil {
			return err
		}
	}
	return nil
}

// ColumnByName returns the index of the named column, or -1.
func (t *Table) ColumnByName(name string) int {
	for j := range t.Specs {
		if t.Specs[j].Name == name {
			return j
		}
	}
	return -1
}

// SelectColumns returns a new Table containing the given columns, in order.
func (t *Table) SelectColumns(cols []int) (*Table, error) {
	d := t.mustDense("SelectColumns")
	specs := make([]ColumnSpec, len(cols))
	mats := make([]*tensor.Dense, len(cols))
	for i, j := range cols {
		if j < 0 || j >= t.Cols() {
			return nil, fmt.Errorf("encoding: column index %d out of range %d", j, t.Cols())
		}
		specs[i] = t.Specs[j]
		mats[i] = d.SliceCols(j, j+1)
	}
	return &Table{Specs: specs, Data: tensor.ConcatCols(mats...)}, nil
}

// SliceRows returns a new Table with rows [from, to).
func (t *Table) SliceRows(from, to int) *Table {
	return &Table{Specs: t.Specs, Data: t.mustDense("SliceRows").SliceRows(from, to)}
}

// GatherRows returns a new Table whose row k is t's row idx[k].
func (t *Table) GatherRows(idx []int) *Table {
	return &Table{Specs: t.Specs, Data: t.mustDense("GatherRows").GatherRows(idx)}
}

// ShuffleRows returns a new Table with rows permuted by perm.
func (t *Table) ShuffleRows(perm []int) *Table {
	return &Table{Specs: t.Specs, Data: t.mustDense("ShuffleRows").ShuffleRows(perm)}
}

// ConcatColumns horizontally joins tables that share a row count, as the
// server does when assembling the final synthetic dataset from per-client
// slices.
func ConcatColumns(tables ...*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, errors.New("encoding: no tables to concatenate")
	}
	rows := tables[0].Rows()
	var specs []ColumnSpec
	mats := make([]*tensor.Dense, 0, len(tables))
	for _, t := range tables {
		if t.Rows() != rows {
			return nil, fmt.Errorf("encoding: row count mismatch %d vs %d", t.Rows(), rows)
		}
		specs = append(specs, t.Specs...)
		mats = append(mats, t.mustDense("ConcatColumns"))
	}
	return &Table{Specs: specs, Data: tensor.ConcatCols(mats...)}, nil
}

// VerticalSplit partitions the table's columns across parties according to
// assignment, where assignment[j] names the party owning column j. It
// returns one Table per party with the party's columns in original order.
func (t *Table) VerticalSplit(assignment []int, numParties int) ([]*Table, error) {
	if len(assignment) != t.Cols() {
		return nil, fmt.Errorf("encoding: assignment length %d for %d columns", len(assignment), t.Cols())
	}
	colsPer := make([][]int, numParties)
	for j, p := range assignment {
		if p < 0 || p >= numParties {
			return nil, fmt.Errorf("encoding: column %d assigned to invalid party %d", j, p)
		}
		colsPer[p] = append(colsPer[p], j)
	}
	out := make([]*Table, numParties)
	for p := range out {
		if len(colsPer[p]) == 0 {
			return nil, fmt.Errorf("encoding: party %d owns no columns", p)
		}
		sub, err := t.SelectColumns(colsPer[p])
		if err != nil {
			return nil, err
		}
		out[p] = sub
	}
	return out, nil
}
