package encoding

import (
	"repro/internal/tensor"
)

// Backing abstracts where a party's encoded training matrix lives: fully
// in memory (DenseBacking) or on disk in a gtvcol file with a bounded
// block cache (the backing returned by OpenOrEncode with Storage set).
// Trainers draw batches through it, so the same training loop runs
// in-core or out-of-core — bit-identically, since gtvcol round-trips
// float64 bit patterns exactly.
type Backing interface {
	// Rows returns the number of encoded rows.
	Rows() int
	// Width returns the encoded width.
	Width() int
	// GatherRows returns a pooled batch whose row k is encoded row idx[k].
	// The caller owns the result and must Release it when the training
	// step is done with it.
	//
	//shape: out(N,W)
	GatherRows(idx []int) (*tensor.Dense, error)
	// Dense returns the full encoded matrix. owned reports whether the
	// caller must Release it: columnar backings expand it per call (the
	// faithful-real-pass path; see DESIGN.md), the in-memory backing
	// returns its resident matrix.
	//
	//shape: out(R,W)
	Dense() (m *tensor.Dense, owned bool, err error)
	// Shuffle re-orders the logical rows so that new row k holds old row
	// perm[k] (training-with-shuffling). Columnar backings compose a row
	// view instead of rewriting the immutable file.
	Shuffle(perm []int) error
	// Close releases file handles and caches; the in-memory backing is a
	// no-op.
	Close() error
}

// DenseBacking is the in-memory Backing: a thin wrapper over the encoded
// *tensor.Dense, preserving the pre-gtvcol behavior exactly.
type DenseBacking struct {
	m *tensor.Dense
}

// NewDenseBacking wraps an encoded matrix.
//
//shape: in(N,W)
func NewDenseBacking(m *tensor.Dense) *DenseBacking { return &DenseBacking{m: m} }

// Rows implements Backing.
func (b *DenseBacking) Rows() int { return b.m.Rows() }

// Width implements Backing.
func (b *DenseBacking) Width() int { return b.m.Cols() }

// GatherRows implements Backing. The result comes from the tensor pool.
//
//shape: out(N,W)
func (b *DenseBacking) GatherRows(idx []int) (*tensor.Dense, error) {
	return b.m.GatherRows(idx), nil
}

// Dense implements Backing: the resident matrix, not owned by the caller.
//
//shape: out(R,W)
func (b *DenseBacking) Dense() (*tensor.Dense, bool, error) { return b.m, false, nil }

// Shuffle implements Backing.
func (b *DenseBacking) Shuffle(perm []int) error {
	b.m = b.m.ShuffleRows(perm)
	return nil
}

// Close implements Backing.
func (b *DenseBacking) Close() error { return nil }
