package encoding

import (
	"fmt"
	"math/rand"

	"repro/internal/gmm"
	"repro/internal/tensor"
)

// SpanType distinguishes the two activation regimes of encoded columns.
type SpanType int

// Span types.
const (
	// SpanScalar is a single tanh-activated column (the mode offset alpha).
	SpanScalar SpanType = iota + 1
	// SpanOneHot is a softmax-activated group of indicator columns.
	SpanOneHot
)

// Span describes one contiguous group of encoded columns.
type Span struct {
	// Column is the index of the source column in the raw table.
	Column int
	// Start is the first encoded column of the span; Width its length.
	Start, Width int
	// Type selects the generator output activation for the span.
	Type SpanType
	// Categorical marks one-hot spans that encode a raw categorical column;
	// only these participate in conditional-vector construction.
	Categorical bool
}

// End returns the exclusive end offset of the span.
func (s Span) End() int { return s.Start + s.Width }

// colEncoder is the fitted per-column encoding state.
type colEncoder struct {
	spec ColumnSpec
	// mixture is set for continuous and mixed columns.
	mixture *gmm.Model
	// specialIdx maps a mixed column's special values to their slot.
	specialIdx map[float64]int
}

// width returns the number of encoded columns this column occupies.
func (c *colEncoder) width() int {
	switch c.spec.Kind {
	case KindCategorical:
		return len(c.spec.Categories)
	case KindContinuous:
		return 1 + c.mixture.K()
	case KindMixed:
		return 1 + len(c.spec.SpecialValues) + c.mixture.K()
	default:
		panic(fmt.Sprintf("encoding: invalid kind %d", int(c.spec.Kind)))
	}
}

// Transformer converts raw tables to the GAN representation and back. Fit it
// once per party on that party's local columns.
type Transformer struct {
	specs []ColumnSpec
	cols  []colEncoder
	spans []Span
	width int
}

// FitTransformer learns per-column encoders from the table. GMM fitting for
// continuous and mixed columns uses cfg; pass gmm.DefaultConfig() for the
// CTGAN-compatible setup.
func FitTransformer(rng *rand.Rand, t *Table, cfg gmm.Config) (*Transformer, error) {
	tr := &Transformer{specs: t.Specs, cols: make([]colEncoder, len(t.Specs))}
	for j := range t.Specs {
		spec := t.Specs[j]
		enc := colEncoder{spec: spec}
		switch spec.Kind {
		case KindCategorical:
			// nothing to fit
		case KindContinuous:
			m, err := gmm.Fit(rng, t.Column(j), cfg)
			if err != nil {
				return nil, fmt.Errorf("encoding: fitting column %q: %w", spec.Name, err)
			}
			enc.mixture = m
		case KindMixed:
			enc.specialIdx = make(map[float64]int, len(spec.SpecialValues))
			for i, v := range spec.SpecialValues {
				enc.specialIdx[v] = i
			}
			cont := make([]float64, 0, t.Rows())
			for _, v := range t.Column(j) {
				if _, special := enc.specialIdx[v]; !special {
					cont = append(cont, v)
				}
			}
			if len(cont) == 0 {
				// Degenerate: every value is special; model the continuous
				// part as a point mass at zero so widths stay consistent.
				cont = []float64{0}
			}
			m, err := gmm.Fit(rng, cont, cfg)
			if err != nil {
				return nil, fmt.Errorf("encoding: fitting mixed column %q: %w", spec.Name, err)
			}
			enc.mixture = m
		default:
			return nil, fmt.Errorf("encoding: column %q has invalid kind", spec.Name)
		}
		tr.cols[j] = enc
	}
	tr.buildLayout()
	return tr, nil
}

// buildLayout derives the span list and total width from the fitted
// per-column encoders. It is shared by FitTransformer and the
// deserialization path, so a transformer decoded from a gtvcol metadata
// blob lays out its columns exactly like the one that was fitted.
func (tr *Transformer) buildLayout() {
	tr.spans = tr.spans[:0]
	offset := 0
	for j := range tr.cols {
		enc := &tr.cols[j]
		switch enc.spec.Kind {
		case KindCategorical:
			tr.spans = append(tr.spans, Span{
				Column: j, Start: offset, Width: enc.spec.NumCategories(),
				Type: SpanOneHot, Categorical: true,
			})
		case KindContinuous:
			tr.spans = append(tr.spans,
				Span{Column: j, Start: offset, Width: 1, Type: SpanScalar},
				Span{Column: j, Start: offset + 1, Width: enc.mixture.K(), Type: SpanOneHot},
			)
		case KindMixed:
			tr.spans = append(tr.spans,
				Span{Column: j, Start: offset, Width: 1, Type: SpanScalar},
				Span{Column: j, Start: offset + 1, Width: len(enc.spec.SpecialValues) + enc.mixture.K(), Type: SpanOneHot},
			)
		}
		offset += enc.width()
	}
	tr.width = offset
}

// Width returns the total encoded width.
func (tr *Transformer) Width() int { return tr.width }

// Spans returns the encoded column layout. The returned slice must not be
// modified.
func (tr *Transformer) Spans() []Span { return tr.spans }

// CategoricalSpans returns only the spans of raw categorical columns, the
// ones eligible for conditional vectors.
func (tr *Transformer) CategoricalSpans() []Span {
	out := make([]Span, 0, len(tr.spans))
	for _, s := range tr.spans {
		if s.Categorical {
			out = append(out, s)
		}
	}
	return out
}

// Specs returns the raw column specs the transformer was fitted on.
func (tr *Transformer) Specs() []ColumnSpec { return tr.specs }

// Transform encodes the table. rng drives the posterior mode sampling of
// mode-specific normalization (CTGAN samples the mode rather than taking
// the argmax).
//
//shape: out(R,W)
func (tr *Transformer) Transform(rng *rand.Rand, t *Table) (*tensor.Dense, error) {
	if len(t.Specs) != len(tr.specs) {
		return nil, fmt.Errorf("encoding: table has %d columns, transformer fitted on %d", len(t.Specs), len(tr.specs))
	}
	out := tensor.New(t.Rows(), tr.width)
	err := t.ScanRows(func(i int, row []float64) error {
		return tr.encodeRow(rng, i, row, out.RawRow(i))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TransformTo streams the encoded rows through emit in row order without
// ever materializing the full encoded matrix — the out-of-core encode
// path feeds a coldata.Writer this way. It consumes rng exactly like
// Transform does (one mode sample per continuous cell, in row-major
// order), so the two paths produce bit-identical encodings from the same
// stream position.
func (tr *Transformer) TransformTo(rng *rand.Rand, t *Table, emit func(row []float64) error) error {
	if len(t.Specs) != len(tr.specs) {
		return fmt.Errorf("encoding: table has %d columns, transformer fitted on %d", len(t.Specs), len(tr.specs))
	}
	buf := make([]float64, tr.width)
	return t.ScanRows(func(i int, row []float64) error {
		for k := range buf {
			buf[k] = 0
		}
		if err := tr.encodeRow(rng, i, row, buf); err != nil {
			return err
		}
		return emit(buf)
	})
}

// encodeRow encodes one raw row into dst (len tr.width, pre-zeroed),
// consuming one rng draw per continuous/mixed-continuous cell.
func (tr *Transformer) encodeRow(rng *rand.Rand, i int, row, dst []float64) error {
	off := 0
	for j := range tr.cols {
		enc := &tr.cols[j]
		v := row[j]
		switch enc.spec.Kind {
		case KindCategorical:
			k := int(v)
			if k < 0 || k >= enc.spec.NumCategories() {
				return fmt.Errorf("encoding: row %d column %q invalid category %v", i, enc.spec.Name, v)
			}
			dst[off+k] = 1
		case KindContinuous:
			mode := enc.mixture.SampleMode(rng, v)
			dst[off] = enc.mixture.Normalize(v, mode)
			dst[off+1+mode] = 1
		case KindMixed:
			if slot, special := enc.specialIdx[v]; special {
				dst[off] = 0
				dst[off+1+slot] = 1
			} else {
				mode := enc.mixture.SampleMode(rng, v)
				dst[off] = enc.mixture.Normalize(v, mode)
				dst[off+1+len(enc.spec.SpecialValues)+mode] = 1
			}
		}
		off += enc.width()
	}
	return nil
}

// Inverse decodes an encoded (or generated) matrix back to a raw table.
// One-hot groups are decoded by argmax; scalar offsets are clipped to
// [-1, 1] before denormalization.
//
//shape: in(R,W)
func (tr *Transformer) Inverse(enc *tensor.Dense) (*Table, error) {
	if enc.Cols() != tr.width {
		return nil, fmt.Errorf("encoding: matrix width %d, transformer width %d", enc.Cols(), tr.width)
	}
	out := tensor.New(enc.Rows(), len(tr.specs))
	for i := 0; i < enc.Rows(); i++ {
		src := enc.RawRow(i)
		dst := out.RawRow(i)
		off := 0
		for j := range tr.cols {
			e := &tr.cols[j]
			switch e.spec.Kind {
			case KindCategorical:
				dst[j] = float64(argmax(src[off : off+e.spec.NumCategories()]))
			case KindContinuous:
				alpha := src[off]
				mode := argmax(src[off+1 : off+1+e.mixture.K()])
				dst[j] = e.mixture.Denormalize(alpha, mode)
			case KindMixed:
				nSpecial := len(e.spec.SpecialValues)
				slot := argmax(src[off+1 : off+1+nSpecial+e.mixture.K()])
				if slot < nSpecial {
					dst[j] = e.spec.SpecialValues[slot]
				} else {
					dst[j] = e.mixture.Denormalize(src[off], slot-nSpecial)
				}
			}
			off += e.width()
		}
	}
	return &Table{Specs: tr.specs, Data: out}, nil
}

// CategoryFrequencies returns, for categorical column j, the frequency of
// each category in the table. It is used by conditional-vector sampling.
// Frequencies are whole-column aggregates, the disclosure granularity the
// paper's conditional sampling already assumes.
//
//privacy:sanitizer per-column category frequencies (aggregate)
func CategoryFrequencies(t *Table, j int) ([]float64, error) {
	if j < 0 || j >= len(t.Specs) || t.Specs[j].Kind != KindCategorical {
		return nil, fmt.Errorf("encoding: column %d is not categorical", j)
	}
	freq := make([]float64, t.Specs[j].NumCategories())
	// Column (not Data.At) so stored tables count straight from their
	// compact categorical blocks.
	for _, v := range t.Column(j) {
		freq[int(v)]++
	}
	n := float64(t.Rows())
	if n > 0 {
		for k := range freq {
			freq[k] /= n
		}
	}
	return freq, nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
