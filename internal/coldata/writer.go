package coldata

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"repro/internal/tensor"
)

// Writer streams a row-major float64 matrix into a gtvcol file. Rows are
// buffered into stripes of blockRows; each full stripe is sliced into
// per-column blocks, encoded and flushed, so writing a table never holds
// more than one stripe in memory. Close flushes the final partial stripe,
// the metadata blobs and the footer/trailer.
type Writer struct {
	f    *bufio.Writer
	file *os.File
	path string

	cols      int
	blockRows int
	rows      int
	pending   int       // rows buffered in stripeBuf
	stripeBuf []float64 // pending*cols, row-major

	colScratch []float64
	blockBuf   []byte
	blockLens  []uint32 // stripe-major, cols per stripe
	metaNames  []string
	metaBlobs  map[string][]byte
	offset     int64
	closed     bool
}

// Create opens path for writing (truncating any existing file) and writes
// the gtvcol header. blockRows <= 0 selects DefaultBlockRows.
func Create(path string, cols, blockRows int) (*Writer, error) {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	if cols <= 0 || cols > maxCols {
		return nil, fmt.Errorf("coldata: invalid column count %d", cols)
	}
	if blockRows > maxBlockRows {
		return nil, fmt.Errorf("coldata: block rows %d over limit %d", blockRows, maxBlockRows)
	}
	file, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f: bufio.NewWriterSize(file, 1<<20), file: file, path: path,
		cols: cols, blockRows: blockRows,
		stripeBuf:  make([]float64, 0, blockRows*cols),
		colScratch: make([]float64, blockRows),
		metaBlobs:  map[string][]byte{},
	}
	var hdr [headerSize]byte
	copy(hdr[:], headMagic[:])
	hdr[7] = Version
	if err := w.write(hdr[:]); err != nil {
		w.abort()
		return nil, err
	}
	return w, nil
}

func (w *Writer) write(b []byte) error {
	n, err := w.f.Write(b)
	w.offset += int64(n)
	return err
}

func (w *Writer) abort() {
	//lint:ignore errdrop the write error being handled already describes the failure
	_ = w.file.Close()
	w.closed = true
}

// AppendRow buffers one row (len must equal the writer's column count).
func (w *Writer) AppendRow(vals []float64) error {
	if len(vals) != w.cols {
		return fmt.Errorf("coldata: row has %d values, file has %d columns", len(vals), w.cols)
	}
	w.stripeBuf = append(w.stripeBuf, vals...)
	w.pending++
	w.rows++
	if w.pending == w.blockRows {
		return w.flushStripe()
	}
	return nil
}

// AppendRows buffers every row of m (m's column count must match).
func (w *Writer) AppendRows(m *tensor.Dense) error {
	if m.Cols() != w.cols {
		return fmt.Errorf("coldata: matrix has %d columns, file has %d", m.Cols(), w.cols)
	}
	for i := 0; i < m.Rows(); i++ {
		if err := w.AppendRow(m.RawRow(i)); err != nil {
			return err
		}
	}
	return nil
}

// SetMeta attaches a named metadata blob, written ahead of the footer on
// Close. Setting a name again replaces its blob.
func (w *Writer) SetMeta(name string, blob []byte) error {
	if name == "" || len(name) > maxMetaName {
		return fmt.Errorf("coldata: invalid meta name %q", name)
	}
	if len(blob) > maxMetaLen {
		return fmt.Errorf("coldata: meta %q blob too large (%d bytes)", name, len(blob))
	}
	if _, dup := w.metaBlobs[name]; !dup {
		w.metaNames = append(w.metaNames, name)
	}
	w.metaBlobs[name] = append([]byte(nil), blob...)
	return nil
}

// flushStripe encodes the buffered rows as one stripe of per-column
// blocks.
func (w *Writer) flushStripe() error {
	rows := w.pending
	if rows == 0 {
		return nil
	}
	for j := 0; j < w.cols; j++ {
		col := w.colScratch[:rows]
		for i := 0; i < rows; i++ {
			col[i] = w.stripeBuf[i*w.cols+j]
		}
		w.blockBuf = appendBlock(w.blockBuf[:0], col)
		if err := w.write(w.blockBuf); err != nil {
			return err
		}
		w.blockLens = append(w.blockLens, uint32(len(w.blockBuf)))
	}
	w.stripeBuf = w.stripeBuf[:0]
	w.pending = 0
	return nil
}

// Close flushes the final stripe, writes metadata, footer and trailer,
// and closes the file. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("coldata: writer already closed")
	}
	w.closed = true
	err := w.finish()
	if cerr := w.file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("coldata: writing %s: %w", w.path, err)
	}
	return nil
}

func (w *Writer) finish() error {
	if int64(w.rows) > maxRows {
		return fmt.Errorf("row count %d over limit", w.rows)
	}
	if err := w.flushStripe(); err != nil {
		return err
	}
	// Deterministic meta order regardless of SetMeta call order.
	sort.Strings(w.metaNames)
	for _, name := range w.metaNames {
		if err := w.write(w.metaBlobs[name]); err != nil {
			return err
		}
	}
	footerOff := w.offset
	stripes := len(w.blockLens) / w.cols
	footer := make([]byte, 0, 64+len(w.blockLens)*3)
	footer = appendUvarint(footer, uint64(w.rows))
	footer = appendUvarint(footer, uint64(w.cols))
	footer = appendUvarint(footer, uint64(w.blockRows))
	footer = appendUvarint(footer, uint64(stripes))
	for _, l := range w.blockLens {
		footer = appendUvarint(footer, uint64(l))
	}
	footer = appendUvarint(footer, uint64(len(w.metaNames)))
	for _, name := range w.metaNames {
		blob := w.metaBlobs[name]
		footer = appendUvarint(footer, uint64(len(name)))
		footer = append(footer, name...)
		footer = appendUvarint(footer, uint64(len(blob)))
		// The blob's CRC lives in the footer (itself CRC'd), so every byte
		// of the file is integrity-checked.
		footer = appendUvarint(footer, uint64(crc32.ChecksumIEEE(blob)))
	}
	if err := w.write(footer); err != nil {
		return err
	}
	var tr []byte
	tr = binary.LittleEndian.AppendUint64(tr, uint64(footerOff))
	tr = binary.LittleEndian.AppendUint32(tr, uint32(len(footer)))
	tr = binary.LittleEndian.AppendUint32(tr, crc32.ChecksumIEEE(footer))
	tr = append(tr, tailMagic[:]...)
	if err := w.write(tr); err != nil {
		return err
	}
	return w.f.Flush()
}
