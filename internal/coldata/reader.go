package coldata

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/tensor"
)

// Reader serves random-access row gathers and sequential stripe scans
// over a gtvcol file. Decoded blocks are kept compact in a byte-bounded
// LRU cache, so resident memory is bounded by the cache budget (plus one
// stripe of pooled scan buffers), never by the dataset.
//
// Concurrency: Close aside, a Reader supports one random-access consumer
// at a time; ScanStripes overlaps its internal prefetch decode with the
// caller's compute but presents stripes strictly in order.
type Reader struct {
	src  io.ReaderAt
	file *os.File // set by Open; closed by Close

	rows, cols int
	blockRows  int
	stripes    int
	blockOff   []int64  // stripe-major absolute offsets, stripes*cols
	blockLen   []uint32 // same order
	metas      map[string][]byte

	cache *blockCache
}

// Open maps the gtvcol file at path. cacheBytes bounds the decoded-block
// cache (0 = DefaultCacheBytes). The footer, trailer and metadata are
// validated eagerly; block payloads are validated (CRC included) on first
// decode.
func Open(path string, cacheBytes int64) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		//lint:ignore errdrop the stat error is the one worth reporting
		_ = f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size(), cacheBytes)
	if err != nil {
		//lint:ignore errdrop the parse error is the one worth reporting
		_ = f.Close()
		return nil, fmt.Errorf("coldata: opening %s: %w", path, err)
	}
	r.file = f
	return r, nil
}

// NewReader parses a gtvcol image served by src (size bytes long). It is
// the io.ReaderAt-level entry point Open wraps; fuzzing drives it over
// in-memory images.
func NewReader(src io.ReaderAt, size int64, cacheBytes int64) (*Reader, error) {
	r := &Reader{src: src, cache: newBlockCache(cacheBytes)}
	if err := r.parseContainer(size); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) parseContainer(size int64) error {
	if size < headerSize+trailerSize {
		return corruptf("file too short (%d bytes)", size)
	}
	var hdr [headerSize]byte
	if _, err := r.src.ReadAt(hdr[:], 0); err != nil {
		return err
	}
	if [7]byte(hdr[:7]) != headMagic {
		return corruptf("bad magic")
	}
	if hdr[7] != Version {
		return corruptf("unsupported version %d", hdr[7])
	}
	var tr [trailerSize]byte
	if _, err := r.src.ReadAt(tr[:], size-trailerSize); err != nil {
		return err
	}
	if [8]byte(tr[16:]) != tailMagic {
		return corruptf("bad trailer magic")
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	footerLen := int64(binary.LittleEndian.Uint32(tr[8:12]))
	footerCRC := binary.LittleEndian.Uint32(tr[12:16])
	if footerOff < headerSize || footerLen <= 0 || footerLen > maxFooterLen ||
		footerOff+footerLen+trailerSize != size {
		return corruptf("footer bounds off=%d len=%d size=%d", footerOff, footerLen, size)
	}
	footer := make([]byte, footerLen)
	if _, err := r.src.ReadAt(footer, footerOff); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(footer) != footerCRC {
		return corruptf("footer CRC mismatch")
	}
	if err := r.parseFooter(footer, footerOff); err != nil {
		return err
	}
	return nil
}

func (r *Reader) parseFooter(footer []byte, footerOff int64) error {
	var (
		vals [4]uint64
		err  error
	)
	rest := footer
	for i := range vals {
		if vals[i], rest, err = readUvarint(rest); err != nil {
			return err
		}
	}
	rows, cols, blockRows, stripes := vals[0], vals[1], vals[2], vals[3]
	if int64(rows) > maxRows || cols == 0 || cols > maxCols ||
		blockRows == 0 || blockRows > maxBlockRows {
		return corruptf("dimensions rows=%d cols=%d blockRows=%d", rows, cols, blockRows)
	}
	wantStripes := (rows + blockRows - 1) / blockRows
	if stripes != wantStripes {
		return corruptf("%d stripes for %d rows of %d", stripes, rows, blockRows)
	}
	r.rows, r.cols, r.blockRows, r.stripes = int(rows), int(cols), int(blockRows), int(stripes)

	nBlocks := int(stripes) * r.cols
	if uint64(len(rest)) < uint64(nBlocks) { // each length is >= 1 byte
		return corruptf("footer too short for %d block lengths", nBlocks)
	}
	r.blockOff = make([]int64, nBlocks)
	r.blockLen = make([]uint32, nBlocks)
	off := int64(headerSize)
	for b := 0; b < nBlocks; b++ {
		stripeRows := r.stripeRows(b / r.cols)
		var l uint64
		if l, rest, err = readUvarint(rest); err != nil {
			return err
		}
		if l < 7 || l > uint64(maxBlockLen(stripeRows)) {
			return corruptf("block %d length %d out of bounds", b, l)
		}
		r.blockOff[b] = off
		r.blockLen[b] = uint32(l)
		off += int64(l)
	}

	metaCount, rest, err := readUvarint(rest)
	if err != nil {
		return err
	}
	if metaCount > maxMetaCount {
		return corruptf("%d metadata entries", metaCount)
	}
	r.metas = make(map[string][]byte, metaCount)
	type metaLoc struct {
		name string
		off  int64
		len  int64
		crc  uint32
	}
	locs := make([]metaLoc, 0, metaCount)
	for i := uint64(0); i < metaCount; i++ {
		nameLen, rest2, err := readUvarint(rest)
		if err != nil {
			return err
		}
		if nameLen == 0 || nameLen > maxMetaName || uint64(len(rest2)) < nameLen {
			return corruptf("meta name length %d", nameLen)
		}
		name := string(rest2[:nameLen])
		rest2 = rest2[nameLen:]
		blobLen, rest2, err := readUvarint(rest2)
		if err != nil {
			return err
		}
		if blobLen > maxMetaLen {
			return corruptf("meta %q blob length %d", name, blobLen)
		}
		blobCRC, rest2, err := readUvarint(rest2)
		if err != nil {
			return err
		}
		if blobCRC > 0xffffffff {
			return corruptf("meta %q CRC out of range", name)
		}
		if _, dup := r.metas[name]; dup {
			return corruptf("duplicate meta %q", name)
		}
		r.metas[name] = nil
		locs = append(locs, metaLoc{name: name, off: off, len: int64(blobLen), crc: uint32(blobCRC)})
		off += int64(blobLen)
		rest = rest2
	}
	if len(rest) != 0 {
		return corruptf("%d trailing bytes in footer", len(rest))
	}
	// The accounting must land exactly on the footer: any gap would be
	// bytes the index never describes (interleaved or trailing garbage).
	if off != footerOff {
		return corruptf("content ends at %d, footer starts at %d", off, footerOff)
	}
	for _, loc := range locs {
		blob := make([]byte, loc.len)
		if _, err := r.src.ReadAt(blob, loc.off); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(blob) != loc.crc {
			return corruptf("meta %q CRC mismatch", loc.name)
		}
		r.metas[loc.name] = blob
	}
	return nil
}

// Rows returns the row count.
func (r *Reader) Rows() int { return r.rows }

// Cols returns the column count.
func (r *Reader) Cols() int { return r.cols }

// Meta returns the named metadata blob, or nil if absent.
func (r *Reader) Meta(name string) []byte { return r.metas[name] }

// stripeRows returns the row count of stripe s (the last may be short).
func (r *Reader) stripeRows(s int) int {
	if s == r.stripes-1 {
		if tail := r.rows - s*r.blockRows; tail > 0 {
			return tail
		}
	}
	return r.blockRows
}

// Close releases the cache and closes the underlying file (when the
// Reader came from Open).
func (r *Reader) Close() error {
	r.cache.drop()
	if r.file != nil {
		f := r.file
		r.file = nil
		return f.Close()
	}
	return nil
}

// readBlock reads and parses block (s, j), bypassing the cache. The
// caller owns the returned handle and must release it.
func (r *Reader) readBlock(s, j int) (*blockHandle, error) {
	b := s*r.cols + j
	buf := AcquireBlockBuf(int(r.blockLen[b]))
	if _, err := r.src.ReadAt(buf.Bytes(), r.blockOff[b]); err != nil {
		buf.Release()
		return nil, err
	}
	h, err := parseBlock(buf, r.stripeRows(s))
	if err != nil {
		buf.Release()
		return nil, fmt.Errorf("stripe %d column %d: %w", s, j, err)
	}
	return h, nil
}

// cachedBlock returns block (s, j) through the LRU. The handle is owned
// by the cache; it stays valid until the caller's next cache operation.
func (r *Reader) cachedBlock(s, j int) (*blockHandle, error) {
	k := cacheKey{stripe: int32(s), col: int32(j)}
	if h := r.cache.get(k); h != nil {
		return h, nil
	}
	h, err := r.readBlock(s, j)
	if err != nil {
		return nil, err
	}
	r.cache.add(k, h)
	return h, nil
}

// GatherRowsInto fills dst (len(rows) x Cols) with the requested rows, in
// order. Work is grouped stripe-by-stripe and column-at-a-time so each
// needed block is looked up once per gather, and blocks are read in their
// compact form — a random batch touches kilobytes per block, not the dense
// expansion.
func (r *Reader) GatherRowsInto(rows []int32, dst *tensor.Dense) error {
	if dst.Rows() != len(rows) || dst.Cols() != r.cols {
		return fmt.Errorf("coldata: gather destination %dx%d for %d rows x %d cols",
			dst.Rows(), dst.Cols(), len(rows), r.cols)
	}
	// order visits the batch grouped by stripe (stable within a stripe).
	order := make([]int32, len(rows))
	for i := range order {
		row := rows[i]
		if row < 0 || int(row) >= r.rows {
			return fmt.Errorf("coldata: row %d out of range %d", row, r.rows)
		}
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rows[order[a]]/int32(r.blockRows) < rows[order[b]]/int32(r.blockRows)
	})
	for lo := 0; lo < len(order); {
		s := int(rows[order[lo]]) / r.blockRows
		hi := lo
		for hi < len(order) && int(rows[order[hi]])/r.blockRows == s {
			hi++
		}
		base := s * r.blockRows
		for j := 0; j < r.cols; j++ {
			h, err := r.cachedBlock(s, j)
			if err != nil {
				return err
			}
			for _, k := range order[lo:hi] {
				dst.Set(int(k), j, h.at(int(rows[k])-base))
			}
		}
		lo = hi
	}
	return nil
}

// Column returns a copy of column j.
func (r *Reader) Column(j int) ([]float64, error) {
	if j < 0 || j >= r.cols {
		return nil, fmt.Errorf("coldata: column %d out of range %d", j, r.cols)
	}
	out := make([]float64, r.rows)
	for s := 0; s < r.stripes; s++ {
		h, err := r.readBlock(s, j)
		if err != nil {
			return nil, err
		}
		base := s * r.blockRows
		for i := 0; i < h.count; i++ {
			out[base+i] = h.at(i)
		}
		h.release()
	}
	return out, nil
}

// scanResult carries one decoded stripe from the prefetch goroutine.
type scanResult struct {
	m   *tensor.Dense
	err error
}

// decodeStripe expands stripe s into a pooled rows x cols matrix. The
// caller owns (and must Release) the matrix. Cache is bypassed: scans are
// sequential, and caching them would evict the random-access working set.
func (r *Reader) decodeStripe(s int) (*tensor.Dense, error) {
	rows := r.stripeRows(s)
	m := tensor.NewPooledUninit(rows, r.cols)
	for j := 0; j < r.cols; j++ {
		h, err := r.readBlock(s, j)
		if err != nil {
			m.Release()
			return nil, err
		}
		h.fillColumn(m, 0, j)
		h.release()
	}
	return m, nil
}

// ScanStripes streams every stripe through fn in row order as a dense
// rows x cols matrix (valid only during the callback). Decode is double
// buffered: while fn processes stripe s, a prefetch goroutine decodes
// stripe s+1, so I/O and decode overlap the caller's compute.
func (r *Reader) ScanStripes(fn func(firstRow int, block *tensor.Dense) error) error {
	if r.rows == 0 {
		return nil
	}
	decodeAsync := func(s int) chan scanResult {
		ch := make(chan scanResult, 1) // buffered: the send cannot block, so the goroutine always exits
		go func() {
			m, err := r.decodeStripe(s)
			ch <- scanResult{m: m, err: err}
		}()
		return ch
	}
	pending := decodeAsync(0)
	defer func() {
		if pending != nil {
			// Early exit with a prefetch in flight: wait for it and return
			// its buffer to the pool.
			res := <-pending
			res.m.Release()
		}
	}()
	for s := 0; s < r.stripes; s++ {
		var next chan scanResult
		if s+1 < r.stripes {
			next = decodeAsync(s + 1)
		}
		res := <-pending
		pending = next
		if res.err != nil {
			return res.err
		}
		err := fn(s*r.blockRows, res.m)
		res.m.Release()
		if err != nil {
			return err
		}
	}
	return nil
}
