package coldata

import (
	"math/bits"
	"sync"
)

// BlockBuf is a pooled byte buffer holding one raw block read from a
// gtvcol file. Reads land in recycled buffers instead of churning the GC:
// the reader acquires one per block read, hands ownership to the decoded
// block's cache entry, and the entry's eviction (or the transient decode
// that bypassed the cache) releases it.
//
// The acquire/release pairing is enforced statically by the tapelifetime
// lint rule, exactly like tensor's pooled matrices: a function that
// acquires a BlockBuf must release it or visibly pass ownership on.
type BlockBuf struct {
	b []byte
}

// blockBufPools holds one free list per power-of-two capacity class,
// mirroring tensor's slab pools (classes 2^6 .. 2^22 bytes; larger
// requests bypass the pool).
const (
	minBufBits = 6
	maxBufBits = 22
)

var blockBufPools [maxBufBits + 1]sync.Pool

func bufBucket(n int) int {
	b := bits.Len(uint(n - 1))
	if b < minBufBits {
		b = minBufBits
	}
	return b
}

// AcquireBlockBuf returns a pooled n-byte buffer. Contents are
// unspecified; the caller must fill all n bytes before reading them. The
// caller owns the buffer until it calls Release or hands it to an owner
// that does.
func AcquireBlockBuf(n int) *BlockBuf {
	if n <= 0 {
		return &BlockBuf{}
	}
	b := bufBucket(n)
	if b > maxBufBits {
		return &BlockBuf{b: make([]byte, n)}
	}
	if v := blockBufPools[b].Get(); v != nil {
		buf := v.(*BlockBuf)
		buf.b = buf.b[:cap(buf.b)][:n]
		return buf
	}
	return &BlockBuf{b: make([]byte, n, 1<<b)}
}

// Bytes returns the buffer's contents. The slice is invalidated by
// Release.
func (b *BlockBuf) Bytes() []byte { return b.b }

// Release hands the buffer back to the free list. The caller must be the
// sole owner; the buffer and any slice obtained from Bytes must not be
// used afterwards. Safe on buffers whose capacity is not a pooled class
// (it just drops them) and on nil.
func (b *BlockBuf) Release() {
	if b == nil {
		return
	}
	c := cap(b.b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	k := bits.Len(uint(c)) - 1
	if k < minBufBits || k > maxBufBits {
		return
	}
	blockBufPools[k].Put(b)
}
