package coldata

import (
	"container/list"
	"sync"
)

// DefaultCacheBytes is the decoded-block LRU budget readers use when the
// caller passes 0.
const DefaultCacheBytes = 256 << 20

type cacheKey struct {
	stripe, col int32
}

type cacheEntry struct {
	key    cacheKey
	handle *blockHandle
	bytes  int64
}

// blockCache is a byte-bounded LRU over decoded block handles. Handles
// stay in their compact form (raw payload plus small index slices), so the
// budget tracks roughly the on-disk footprint of the cached blocks, not
// their dense expansion.
//
// The mutex makes the bookkeeping safe under concurrent use, but returned
// handles follow the pool ownership discipline: a handle obtained from get
// is only valid until the same consumer's next add may evict it, so a
// Reader supports one random-access consumer at a time (the same contract
// the vfl.Client interface already imposes per client).
type blockCache struct {
	mu    sync.Mutex
	limit int64
	used  int64                      // guarded by mu
	ll    *list.List                 // guarded by mu; front = most recent
	items map[cacheKey]*list.Element // guarded by mu
}

func newBlockCache(limit int64) *blockCache {
	if limit <= 0 {
		limit = DefaultCacheBytes
	}
	return &blockCache{limit: limit, ll: list.New(), items: map[cacheKey]*list.Element{}}
}

// get returns the cached handle for k, refreshing its recency, or nil.
func (c *blockCache) get(k cacheKey) *blockHandle {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).handle
}

// add inserts a handle (taking ownership of it and its pooled buffer) and
// evicts from the cold end until the budget holds again. The entry just
// inserted is never evicted by its own add, so the caller may use the
// handle until its next cache operation.
func (c *blockCache) add(k cacheKey, h *blockHandle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		// Lost a benign race with another fill of the same block: keep the
		// resident entry, drop the newcomer.
		c.ll.MoveToFront(el)
		h.release()
		return
	}
	e := &cacheEntry{key: k, handle: h, bytes: h.memBytes()}
	c.items[k] = c.ll.PushFront(e)
	c.used += e.bytes
	for c.used > c.limit && c.ll.Len() > 1 {
		back := c.ll.Back()
		ev := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ev.key)
		c.used -= ev.bytes
		ev.handle.release()
	}
}

// drop releases every cached handle.
func (c *blockCache) drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		el.Value.(*cacheEntry).handle.release()
	}
	c.ll.Init()
	c.items = map[cacheKey]*list.Element{}
	c.used = 0
}
