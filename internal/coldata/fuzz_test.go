package coldata

import (
	"bytes"
	"math"
	"os"
	"testing"

	"repro/internal/tensor"
)

// FuzzColFileDecode hammers the container and block decoders with
// arbitrary bytes. The decoder must never panic, never allocate
// unboundedly, and any file it accepts must be self-consistent: column
// reads, stripe scans and row gathers all agree bit for bit.
func FuzzColFileDecode(f *testing.F) {
	// Seed with a small valid file, a few prefixes of it, and mutants.
	m := tensor.New(70, 3)
	for i := 0; i < 70; i++ {
		m.Set(i, 0, float64(i%2))
		m.Set(i, 1, float64(i))
		if i%7 == 0 {
			m.Set(i, 2, 1.5)
		}
	}
	w, err := Create(f.TempDir()+"/seed.gtvcol", 3, 32)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.SetMeta("m", []byte("blob")); err != nil {
		f.Fatal(err)
	}
	if err := w.AppendRows(m); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := readAllFile(f.TempDir() + "/seed.gtvcol")
	if err == nil {
		f.Add(seed)
		for _, cut := range []int{0, 8, len(seed) / 2, len(seed) - 5} {
			if cut >= 0 && cut < len(seed) {
				f.Add(seed[:cut])
			}
		}
		mut := append([]byte(nil), seed...)
		if len(mut) > 40 {
			mut[40] ^= 0xff
		}
		f.Add(mut)
	}
	f.Add([]byte("gtvcol\x00\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), int64(len(data)), 1<<16)
		if err != nil {
			return
		}
		if r.Rows()*r.Cols() > 1<<20 || r.Rows() == 0 {
			return // cap work on absurd (but structurally valid) headers
		}
		cols := make([][]float64, r.Cols())
		for j := range cols {
			c, err := r.Column(j)
			if err != nil {
				return // block-level corruption surfaces here; fine
			}
			cols[j] = c
		}
		// Scan must agree with Column.
		err = r.ScanStripes(func(first int, block *tensor.Dense) error {
			for i := 0; i < block.Rows(); i++ {
				for j := 0; j < block.Cols(); j++ {
					if math.Float64bits(block.At(i, j)) != math.Float64bits(cols[j][first+i]) {
						t.Fatalf("scan disagrees with column at (%d,%d)", first+i, j)
					}
				}
			}
			return nil
		})
		if err != nil {
			return
		}
		// Gather must agree with Column.
		idx := make([]int32, 0, 16)
		for i := 0; i < r.Rows() && len(idx) < 16; i += 1 + r.Rows()/16 {
			idx = append(idx, int32(i))
		}
		dst := tensor.NewPooledUninit(len(idx), r.Cols())
		defer dst.Release()
		if err := r.GatherRowsInto(idx, dst); err != nil {
			return
		}
		for k, row := range idx {
			for j := 0; j < r.Cols(); j++ {
				if math.Float64bits(dst.At(k, j)) != math.Float64bits(cols[j][row]) {
					t.Fatalf("gather disagrees with column at (%d,%d)", row, j)
				}
			}
		}
	})
}

// FuzzColRoundTrip drives the full encode+decode cycle over fuzzed
// values: whatever bit patterns go in must come back out exactly.
func FuzzColRoundTrip(f *testing.F) {
	f.Add(uint64(0x3ff0000000000000), uint64(0), 17)
	f.Add(uint64(0x7ff8000000000001), uint64(1<<63), 64)
	f.Fuzz(func(t *testing.T, a, b uint64, n int) {
		if n <= 0 || n > 300 {
			return
		}
		vals := make([]float64, n)
		x := a
		for i := range vals {
			// xorshift over the two seeds: cheap deterministic variety that
			// still lands interesting patterns (zeros, ones, NaNs).
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			switch x % 5 {
			case 0:
				vals[i] = 0
			case 1:
				vals[i] = 1
			case 2:
				vals[i] = float64(int64(x%2000) - 1000)
			case 3:
				vals[i] = math.Float64frombits(b ^ x)
			default:
				vals[i] = math.Float64frombits(a + x)
			}
		}
		frame := appendBlock(nil, vals)
		buf := AcquireBlockBuf(len(frame))
		copy(buf.Bytes(), frame)
		h, err := parseBlock(buf, n)
		if err != nil {
			buf.Release()
			t.Fatalf("own encoding rejected: %v", err)
		}
		for i, want := range vals {
			if math.Float64bits(h.at(i)) != math.Float64bits(want) {
				t.Fatalf("row %d: %#x != %#x", i, math.Float64bits(h.at(i)), math.Float64bits(want))
			}
		}
		h.release()
	})
}

func readAllFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
