package coldata

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// writeFile encodes m into a gtvcol file under dir and returns its path.
func writeFile(t *testing.T, dir string, m *tensor.Dense, blockRows int, metas map[string][]byte) string {
	t.Helper()
	path := filepath.Join(dir, "t.gtvcol")
	w, err := Create(path, m.Cols(), blockRows)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for name, blob := range map[string][]byte(metas) {
		if err := w.SetMeta(name, blob); err != nil {
			t.Fatalf("SetMeta(%q): %v", name, err)
		}
	}
	if err := w.AppendRows(m); err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// layoutMix builds a rows x 8 matrix whose columns exercise every block
// layout: const, bitmap, one-hot sparse, arbitrary sparse, integral FOR,
// dense noise, and bit-pattern specials (-0.0, NaN payloads, ±Inf).
func layoutMix(rows int, seed int64) *tensor.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.New(rows, 8)
	for i := 0; i < rows; i++ {
		row := m.RawRow(i)
		row[0] = 3.25 // const
		if rng.Intn(2) == 0 {
			row[1] = 1 // bitmap
		}
		if rng.Intn(50) == 0 {
			row[2] = 1 // sparse ones
		}
		if rng.Intn(40) == 0 {
			row[3] = rng.NormFloat64() // sparse values
		}
		row[4] = float64(18 + rng.Intn(60)) // FOR (small range)
		row[5] = rng.NormFloat64()          // dense
		row[6] = float64(rng.Int63n(1<<40) - 1<<39)
		switch rng.Intn(100) {
		case 0:
			row[7] = math.Copysign(0, -1)
		case 1:
			row[7] = math.Inf(1)
		case 2:
			row[7] = math.Float64frombits(0x7ff8000000000123) // NaN payload
		default:
			row[7] = rng.NormFloat64()
		}
	}
	return m
}

// sameBits fails unless got and want carry identical float64 bit patterns.
func sameBits(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: got %v (%#x), want %v (%#x)", what,
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func TestRoundTripBitExact(t *testing.T) {
	const rows = 1500 // several stripes of 512 plus a short tail
	m := layoutMix(rows, 1)
	path := writeFile(t, t.TempDir(), m, 512, map[string][]byte{"k": []byte("v")})

	r, err := Open(path, 1<<20)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	if r.Rows() != rows || r.Cols() != m.Cols() {
		t.Fatalf("shape %dx%d, want %dx%d", r.Rows(), r.Cols(), rows, m.Cols())
	}
	if got := r.Meta("k"); !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Meta = %q", got)
	}
	if r.Meta("missing") != nil {
		t.Fatal("missing meta should be nil")
	}

	// Column access.
	for j := 0; j < m.Cols(); j++ {
		col, err := r.Column(j)
		if err != nil {
			t.Fatalf("Column(%d): %v", j, err)
		}
		for i := range col {
			sameBits(t, "column", col[i], m.At(i, j))
		}
	}

	// Sequential scan.
	seen := 0
	err = r.ScanStripes(func(first int, block *tensor.Dense) error {
		for i := 0; i < block.Rows(); i++ {
			for j := 0; j < block.Cols(); j++ {
				sameBits(t, "scan", block.At(i, j), m.At(first+i, j))
			}
		}
		seen += block.Rows()
		return nil
	})
	if err != nil {
		t.Fatalf("ScanStripes: %v", err)
	}
	if seen != rows {
		t.Fatalf("scanned %d rows, want %d", seen, rows)
	}

	// Random gather, repeated so the cache serves hits.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		idx := make([]int32, 64)
		for k := range idx {
			idx[k] = int32(rng.Intn(rows))
		}
		dst := tensor.NewPooledUninit(len(idx), m.Cols())
		if err := r.GatherRowsInto(idx, dst); err != nil {
			t.Fatalf("GatherRowsInto: %v", err)
		}
		for k, row := range idx {
			for j := 0; j < m.Cols(); j++ {
				sameBits(t, "gather", dst.At(k, j), m.At(int(row), j))
			}
		}
		dst.Release()
	}
}

func TestChooserPicksCheapestLayout(t *testing.T) {
	block := func(f func(i int) float64) []float64 {
		vals := make([]float64, 1000)
		for i := range vals {
			vals[i] = f(i)
		}
		return vals
	}
	cases := []struct {
		name string
		vals []float64
		want byte
	}{
		{"const", block(func(int) float64 { return 7 }), layoutConst},
		{"bitmap", block(func(i int) float64 { return float64(i % 2) }), layoutBitmap},
		{"onehot", block(func(i int) float64 {
			if i%100 == 0 {
				return 1
			}
			return 0
		}), layoutSparseOnes},
		{"sparse", block(func(i int) float64 {
			if i%100 == 0 {
				return 2.5
			}
			return 0
		}), layoutSparse},
		{"for", block(func(i int) float64 { return float64(20 + i%50) }), layoutFOR},
		{"dense", block(func(i int) float64 { return 0.5 + 1/float64(i+1) }), layoutDense},
		{"neg-zero-not-const-zero", block(func(i int) float64 { return math.Copysign(0, -1) }), layoutConst},
	}
	for _, tc := range cases {
		got, _ := chooseLayout(tc.vals)
		if got != tc.want {
			t.Errorf("%s: layout %d, want %d", tc.name, got, tc.want)
		}
		// Whatever was chosen must be the byte-minimal eligible encoding:
		// re-encode under the generic framing and check it round-trips.
		frame := appendBlock(nil, tc.vals)
		buf := AcquireBlockBuf(len(frame))
		copy(buf.Bytes(), frame)
		h, err := parseBlock(buf, len(tc.vals))
		if err != nil {
			buf.Release()
			t.Fatalf("%s: parseBlock: %v", tc.name, err)
		}
		for i, want := range tc.vals {
			if math.Float64bits(h.at(i)) != math.Float64bits(want) {
				t.Fatalf("%s: row %d: %v != %v", tc.name, i, h.at(i), want)
			}
		}
		h.release()
	}
}

func TestEmptyAndSingleRow(t *testing.T) {
	for _, rows := range []int{0, 1} {
		m := tensor.New(rows, 3)
		for i := 0; i < rows; i++ {
			m.Set(i, 1, 4.5)
		}
		path := writeFile(t, t.TempDir(), m, 0, nil)
		r, err := Open(path, 0)
		if err != nil {
			t.Fatalf("rows=%d Open: %v", rows, err)
		}
		if r.Rows() != rows || r.Cols() != 3 {
			t.Fatalf("rows=%d shape %dx%d", rows, r.Rows(), r.Cols())
		}
		if rows == 1 {
			col, err := r.Column(1)
			if err != nil || col[0] != 4.5 {
				t.Fatalf("Column: %v %v", col, err)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

func TestCacheStaysBounded(t *testing.T) {
	m := layoutMix(4000, 3)
	path := writeFile(t, t.TempDir(), m, 256, nil)
	r, err := Open(path, 4096) // tiny budget: a handful of blocks
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	rng := rand.New(rand.NewSource(4))
	dst := tensor.NewPooledUninit(32, m.Cols())
	defer dst.Release()
	for trial := 0; trial < 50; trial++ {
		idx := make([]int32, 32)
		for k := range idx {
			idx[k] = int32(rng.Intn(4000))
		}
		if err := r.GatherRowsInto(idx, dst); err != nil {
			t.Fatalf("gather: %v", err)
		}
		for k, row := range idx {
			sameBits(t, "bounded-cache gather", dst.At(k, 5), m.At(int(row), 5))
		}
	}
	r.cache.mu.Lock()
	used, limit := r.cache.used, r.cache.limit
	n := r.cache.ll.Len()
	r.cache.mu.Unlock()
	if n > 1 && used > limit {
		t.Fatalf("cache used %d over limit %d with %d entries", used, limit, n)
	}
}

func TestTruncationEveryCutPoint(t *testing.T) {
	m := layoutMix(300, 5)
	path := writeFile(t, t.TempDir(), m, 128, map[string][]byte{"meta": []byte("blob")})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, err := NewReader(bytes.NewReader(raw[:cut]), int64(cut), 0); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(raw))
		}
	}
	// Trailing garbage after a valid trailer must also be rejected.
	grown := append(append([]byte(nil), raw...), 0)
	if _, err := NewReader(bytes.NewReader(grown), int64(len(grown)), 0); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestCorruptionEveryByte flips every byte of a file in turn and requires
// that opening plus fully reading it either fails or was a no-op flip
// (impossible: every byte is covered by the header, a block CRC, the
// footer CRC, a meta CRC recorded in the footer, or the trailer fields).
func TestCorruptionEveryByte(t *testing.T) {
	m := layoutMix(300, 6)
	path := writeFile(t, t.TempDir(), m, 128, map[string][]byte{"meta": []byte("blob-under-crc")})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	readAll := func(b []byte) error {
		r, err := NewReader(bytes.NewReader(b), int64(len(b)), 0)
		if err != nil {
			return err
		}
		for j := 0; j < r.Cols(); j++ {
			if _, err := r.Column(j); err != nil {
				return err
			}
		}
		return r.ScanStripes(func(int, *tensor.Dense) error { return nil })
	}
	if err := readAll(raw); err != nil {
		t.Fatalf("pristine file: %v", err)
	}
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if err := readAll(mut); err == nil {
			t.Fatalf("flip of byte %d/%d not detected", i, len(raw))
		}
	}
}

// TestGoldenFixture pins the exact bytes of the format. Regenerate with
// GTV_UPDATE_COL_FIXTURES=1 after an intentional format change.
func TestGoldenFixture(t *testing.T) {
	m := layoutMix(700, 42)
	dir := t.TempDir()
	path := writeFile(t, dir, m, 256, map[string][]byte{
		"schema": []byte("golden fixture schema blob"),
	})
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.gtvcol")
	if os.Getenv("GTV_UPDATE_COL_FIXTURES") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, len(got))
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden fixture (run with GTV_UPDATE_COL_FIXTURES=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gtvcol encoding drifted from golden fixture: %d vs %d bytes (set GTV_UPDATE_COL_FIXTURES=1 if intentional)", len(got), len(want))
	}
	// The fixture must decode to the exact source matrix.
	r, err := Open(golden, 0)
	if err != nil {
		t.Fatalf("Open(golden): %v", err)
	}
	defer r.Close()
	for j := 0; j < m.Cols(); j++ {
		col, err := r.Column(j)
		if err != nil {
			t.Fatalf("Column(%d): %v", j, err)
		}
		for i := range col {
			sameBits(t, "golden", col[i], m.At(i, j))
		}
	}
}

func TestCompressionBeatsDense(t *testing.T) {
	// A one-hot-heavy matrix (the encoded-table shape) must land well under
	// dense float64 size; the acceptance bar for the full pipeline is 4x.
	rng := rand.New(rand.NewSource(7))
	const rows, cats = 20000, 40
	m := tensor.New(rows, cats+2)
	for i := 0; i < rows; i++ {
		m.Set(i, rng.Intn(cats), 1)
		m.Set(i, cats, rng.NormFloat64())         // one dense column
		m.Set(i, cats+1, float64(rng.Intn(1000))) // one integral column
	}
	path := writeFile(t, t.TempDir(), m, 0, nil)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	dense := int64(rows * (cats + 2) * 8)
	if st.Size()*4 > dense {
		t.Fatalf("gtvcol %d bytes, dense %d: less than 4x smaller", st.Size(), dense)
	}
}

func TestWriterRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(filepath.Join(dir, "x"), 0, 0); err == nil {
		t.Fatal("Create with 0 cols accepted")
	}
	w, err := Create(filepath.Join(dir, "y"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRow([]float64{1}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := w.SetMeta("", nil); err == nil {
		t.Fatal("empty meta name accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("double Close accepted")
	}
}
