package coldata

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"repro/internal/tensor"
)

// blockHandle is one decoded (stripe, column) block in its compact form.
// Random access never expands the block: at() reads straight out of the
// retained payload (dense, bitmap, FOR) or binary-searches the expanded
// index list (sparse). buf is the pooled byte buffer backing payload; the
// handle owner (the reader's LRU cache, or a transient decode) releases it.
type blockHandle struct {
	layout  byte
	count   int
	buf     *BlockBuf
	payload []byte // aliases buf for the layouts that keep raw bytes

	constBits uint64
	idx       []int32   // sparse layouts: ascending nonzero row offsets
	vals      []float64 // layoutSparse: the matching nonzero values
	forMin    int64
	forW      int
	forBody   []byte // layoutFOR: the fixed-width delta array
}

// memBytes is the handle's cache weight.
func (h *blockHandle) memBytes() int64 {
	n := int64(64)
	if h.buf != nil {
		n += int64(cap(h.buf.b))
	}
	return n + int64(cap(h.idx))*4 + int64(cap(h.vals))*8
}

// release returns the pooled payload buffer. The handle must not be used
// afterwards.
func (h *blockHandle) release() {
	if h.buf != nil {
		h.buf.Release()
		h.buf = nil
	}
	h.payload, h.forBody, h.idx, h.vals = nil, nil, nil, nil
}

// parseBlock validates one framed block (exactly raw, as read from the
// file) and builds its handle. wantCount is the row count the footer
// implies for this block; anything else is corruption. On success the
// handle takes ownership of buf.
func parseBlock(buf *BlockBuf, wantCount int) (*blockHandle, error) {
	raw := buf.Bytes()
	if len(raw) < 1+1+1+4 {
		return nil, corruptf("block too short (%d bytes)", len(raw))
	}
	body, crcBytes := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, corruptf("block CRC mismatch")
	}
	layout := body[0]
	if layout >= numLayouts {
		return nil, corruptf("unknown block layout %d", layout)
	}
	rest := body[1:]
	count64, rest, err := readUvarint(rest)
	if err != nil {
		return nil, err
	}
	if int64(count64) != int64(wantCount) {
		return nil, corruptf("block has %d rows, footer implies %d", count64, wantCount)
	}
	plen, rest, err := readUvarint(rest)
	if err != nil {
		return nil, err
	}
	if uint64(len(rest)) != plen {
		return nil, corruptf("block payload length %d, frame holds %d", plen, len(rest))
	}
	h := &blockHandle{layout: layout, count: wantCount, buf: buf, payload: rest}
	if err := h.parsePayload(); err != nil {
		h.buf = nil // caller keeps ownership on failure
		return nil, err
	}
	return h, nil
}

func (h *blockHandle) parsePayload() error {
	p := h.payload
	switch h.layout {
	case layoutConst:
		if len(p) != 8 {
			return corruptf("const payload %d bytes", len(p))
		}
		h.constBits = binary.LittleEndian.Uint64(p)
	case layoutBitmap:
		if len(p) != (h.count+7)/8 {
			return corruptf("bitmap payload %d bytes for %d rows", len(p), h.count)
		}
		if h.count%8 != 0 && len(p) > 0 && p[len(p)-1]>>(uint(h.count)%8) != 0 {
			return corruptf("bitmap has bits set past the last row")
		}
	case layoutSparseOnes, layoutSparse:
		nnz64, rest, err := readUvarint(p)
		if err != nil {
			return err
		}
		if nnz64 > uint64(h.count) {
			return corruptf("sparse block claims %d nonzeros in %d rows", nnz64, h.count)
		}
		nnz := int(nnz64)
		h.idx = make([]int32, nnz)
		prev := int64(-1)
		for k := 0; k < nnz; k++ {
			d, r, err := readUvarint(rest)
			if err != nil {
				return err
			}
			rest = r
			var row int64
			if k == 0 {
				row = int64(d)
			} else {
				row = prev + int64(d)
				if d == 0 {
					return corruptf("sparse indices not strictly ascending")
				}
			}
			if row >= int64(h.count) {
				return corruptf("sparse index %d out of %d rows", row, h.count)
			}
			prev = row
			h.idx[k] = int32(row)
		}
		if h.layout == layoutSparse {
			if len(rest) != 8*nnz {
				return corruptf("sparse values %d bytes for %d nonzeros", len(rest), nnz)
			}
			h.vals = make([]float64, nnz)
			for k := range h.vals {
				bits := binary.LittleEndian.Uint64(rest[8*k:])
				if bits == 0 {
					return corruptf("sparse block stores a zero value")
				}
				h.vals[k] = math.Float64frombits(bits)
			}
		} else if len(rest) != 0 {
			return corruptf("%d trailing bytes in sparse-ones payload", len(rest))
		}
	case layoutFOR:
		zz, rest, err := readUvarint(p)
		if err != nil {
			return err
		}
		h.forMin = unzigzag(zz)
		if h.forMin < -maxExactInt || h.forMin > maxExactInt {
			return corruptf("FOR minimum %d outside exact-integer range", h.forMin)
		}
		if len(rest) < 1 {
			return corruptf("FOR payload missing width")
		}
		w := int(rest[0])
		if w != 1 && w != 2 && w != 4 && w != 8 {
			return corruptf("FOR width %d", w)
		}
		rest = rest[1:]
		if len(rest) != w*h.count {
			return corruptf("FOR body %d bytes for %d rows of width %d", len(rest), h.count, w)
		}
		h.forW, h.forBody = w, rest
		for i := 0; i < h.count; i++ {
			if _, ok := h.forValue(i); !ok {
				return corruptf("FOR value out of exact-integer range")
			}
		}
	default: // layoutDense
		if len(p) != 8*h.count {
			return corruptf("dense payload %d bytes for %d rows", len(p), h.count)
		}
	}
	return nil
}

// forValue decodes row i of a FOR block, reporting whether the integer is
// exactly representable as float64.
func (h *blockHandle) forValue(i int) (int64, bool) {
	var d uint64
	switch h.forW {
	case 1:
		d = uint64(h.forBody[i])
	case 2:
		d = uint64(binary.LittleEndian.Uint16(h.forBody[2*i:]))
	case 4:
		d = uint64(binary.LittleEndian.Uint32(h.forBody[4*i:]))
	default:
		d = binary.LittleEndian.Uint64(h.forBody[8*i:])
	}
	if d > uint64(2*maxExactInt) {
		return 0, false
	}
	v := h.forMin + int64(d)
	return v, v >= -maxExactInt && v <= maxExactInt
}

// at returns row i of the block without expanding it.
func (h *blockHandle) at(i int) float64 {
	switch h.layout {
	case layoutConst:
		return math.Float64frombits(h.constBits)
	case layoutBitmap:
		if h.payload[i/8]&(1<<uint(i%8)) != 0 {
			return 1
		}
		return 0
	case layoutSparseOnes, layoutSparse:
		k := searchInt32(h.idx, int32(i))
		if k < 0 {
			return 0
		}
		if h.layout == layoutSparseOnes {
			return 1
		}
		return h.vals[k]
	case layoutFOR:
		v, _ := h.forValue(i)
		return float64(v)
	default:
		return math.Float64frombits(binary.LittleEndian.Uint64(h.payload[8*i:]))
	}
}

// fillColumn writes all count rows of the block into column col of dst,
// starting at dst row dstRow. Every cell in the range is written (zeros
// included), so dst may be uninitialized pooled memory.
func (h *blockHandle) fillColumn(dst *tensor.Dense, dstRow, col int) {
	switch h.layout {
	case layoutSparseOnes, layoutSparse:
		for i := 0; i < h.count; i++ {
			dst.Set(dstRow+i, col, 0)
		}
		for k, row := range h.idx {
			v := 1.0
			if h.layout == layoutSparse {
				v = h.vals[k]
			}
			dst.Set(dstRow+int(row), col, v)
		}
	default:
		for i := 0; i < h.count; i++ {
			dst.Set(dstRow+i, col, h.at(i))
		}
	}
}

// searchInt32 binary-searches a sorted slice, returning the position of
// want or -1.
func searchInt32(xs []int32, want int32) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == want {
		return lo
	}
	return -1
}
