// Package coldata implements gtvcol, the on-disk columnar file format
// behind GTV's out-of-core training. A .gtvcol file stores a row-major
// float64 matrix column by column in stripes of blockRows rows; each
// (stripe, column) block is stored under the cheapest of six bit-exact
// encodings, chosen per block by an exhaustive byte-cost scan:
//
//	dense      raw little-endian float64 bits (the fallback)
//	const      a single value repeated over the block
//	bitmap     values drawn from {0.0, 1.0}, one bit per row (LSB first)
//	sparseOnes mostly-zero with every nonzero exactly 1.0: delta-varint
//	           row indices only (one-hot indicator columns at rest)
//	sparse     mostly-zero with arbitrary nonzeros: delta-varint indices
//	           plus raw value bits
//	for        integral-valued columns: frame-of-reference minimum plus
//	           fixed-width unsigned deltas (fixed width, not varint, so a
//	           single row is readable without decoding the block — see
//	           DESIGN.md "Columnar data plane")
//
// Every encoding round-trips float64 bit patterns exactly (matching the
// gtvwire sparse layout family, applied at rest), so training from a
// .gtvcol file follows the same trajectory, bit for bit, as training from
// the in-memory matrix it was written from.
//
// The container framing follows the gtvsnap/gtvwire codec rules: magic +
// version header, length-prefixed sections, a CRC32 per block and on the
// footer, every length bounded before allocation, and trailing or
// interleaved garbage rejected (the footer's accounting must reproduce the
// file size exactly).
package coldata

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// appendCRC appends the IEEE CRC32 of dst[start:] to dst.
func appendCRC(dst []byte, start int) []byte {
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// Format constants. The header is the file magic plus a format version;
// the trailer ends with its own magic so truncation is caught before any
// offset in the file is trusted.
const (
	// Version is the gtvcol format version this package reads and writes.
	Version = 1

	headerSize  = 8 // "gtvcol\x00" + version byte
	trailerSize = 24
)

var (
	headMagic = [7]byte{'g', 't', 'v', 'c', 'o', 'l', 0}
	tailMagic = [8]byte{'G', 'T', 'V', 'C', 'E', 'N', 'D', '1'}
)

// Block layouts, in tie-break preference order (lower wins on equal cost).
const (
	layoutConst byte = iota
	layoutBitmap
	layoutSparseOnes
	layoutFOR
	layoutSparse
	layoutDense
	numLayouts
)

// Hard bounds. They keep hostile headers from provoking huge allocations:
// nothing is allocated before its length passes these checks.
const (
	// DefaultBlockRows is the stripe height writers use unless told
	// otherwise: 64Ki rows, i.e. 512 KiB per dense float64 block.
	DefaultBlockRows = 1 << 16

	maxBlockRows = 1 << 22
	maxCols      = 1 << 20
	maxRows      = int64(1) << 38
	maxFooterLen = 1 << 28
	maxMetaCount = 64
	maxMetaName  = 256
	maxMetaLen   = 1 << 28
)

// maxBlockLen bounds one block's byte length for a given row count. The
// worst legal case is the sparse layout with every row nonzero: a 5-byte
// index delta plus 8 value bytes per row, plus framing.
func maxBlockLen(rows int) int { return 13*rows + 64 }

// ErrCorrupt wraps every decode failure so callers can distinguish a bad
// file from an I/O error.
var ErrCorrupt = errors.New("coldata: corrupt gtvcol file")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ---- varint helpers ----
//
// Same wire primitives as gtvwire: unsigned LEB128 via encoding/binary,
// with a strict reader that fails instead of silently mis-parsing.

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readUvarint consumes a uvarint from b, returning the value and the rest.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, corruptf("bad uvarint")
	}
	return v, b[n:], nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// ---- block encoding ----

// oneBits/zeroBits are the exact bit patterns the bitmap and sparse
// classifiers test against. -0.0 has bits != zeroBits and is therefore a
// "nonzero" that survives in a sparse payload, keeping round trips exact.
const oneBits = 0x3ff0000000000000

// maxExactInt bounds the integral range the FOR layout accepts: every
// integer with |v| <= 2^52 is exactly representable as float64, so
// int64 round trips are lossless inside it.
const maxExactInt = int64(1) << 52

// blockStats is the single-pass scan feeding the encoding chooser.
type blockStats struct {
	n           int
	firstBits   uint64
	allSame     bool
	nnz         int   // values with bits != 0
	deltaBytes  int   // delta-varint byte cost of the nonzero index list
	allZeroOne  bool  // every value is bitwise +0.0 or 1.0
	nonzeroOnes bool  // every nonzero is bitwise 1.0
	allIntegral bool  // every value is an exactly-representable integer
	minI, maxI  int64 // integral range (valid when allIntegral)
}

func scanBlock(vals []float64) blockStats {
	s := blockStats{
		n: len(vals), allSame: true, allZeroOne: true,
		nonzeroOnes: true, allIntegral: true,
	}
	prevNZ := -1
	for i, v := range vals {
		b := math.Float64bits(v)
		if i == 0 {
			s.firstBits = b
		} else if b != s.firstBits {
			s.allSame = false
		}
		if b != 0 {
			s.nnz++
			if prevNZ < 0 {
				s.deltaBytes += uvarintLen(uint64(i))
			} else {
				s.deltaBytes += uvarintLen(uint64(i - prevNZ))
			}
			prevNZ = i
			if b != oneBits {
				s.nonzeroOnes = false
				s.allZeroOne = false
			}
		}
		if s.allIntegral {
			// Integral means the int64 round trip is bit-exact, which
			// excludes -0.0 (int64 cannot carry its sign), NaN and ±Inf.
			//lint:ignore floateq Trunc round-trip is the intended exactness test for integer-valued floats
			if v != math.Trunc(v) || v < float64(-maxExactInt) || v > float64(maxExactInt) || b == 1<<63 {
				s.allIntegral = false
			} else {
				iv := int64(v)
				if i == 0 || iv < s.minI {
					s.minI = iv
				}
				if i == 0 || iv > s.maxI {
					s.maxI = iv
				}
			}
		}
	}
	return s
}

// forWidth returns the fixed byte width covering an unsigned delta range.
func forWidth(span uint64) int {
	switch {
	case span < 1<<8:
		return 1
	case span < 1<<16:
		return 2
	case span < 1<<32:
		return 4
	default:
		return 8
	}
}

// chooseLayout runs the bit-exact cost scan and returns the cheapest
// layout for vals together with its exact payload byte count. Ties break
// toward the lower layout id, which makes encoding deterministic.
func chooseLayout(vals []float64) (byte, blockStats) {
	s := scanBlock(vals)
	costs := [numLayouts]int{}
	for l := range costs {
		costs[l] = -1 // ineligible
	}
	costs[layoutDense] = 8 * s.n
	if s.allSame && s.n > 0 {
		costs[layoutConst] = 8
	}
	if s.allZeroOne {
		costs[layoutBitmap] = (s.n + 7) / 8
	}
	if s.nonzeroOnes {
		costs[layoutSparseOnes] = uvarintLen(uint64(s.nnz)) + s.deltaBytes
	}
	costs[layoutSparse] = uvarintLen(uint64(s.nnz)) + s.deltaBytes + 8*s.nnz
	if s.allIntegral && s.n > 0 {
		w := forWidth(uint64(s.maxI - s.minI))
		costs[layoutFOR] = uvarintLen(zigzag(s.minI)) + 1 + w*s.n
	}
	best := layoutDense
	for l := byte(0); l < numLayouts; l++ {
		if costs[l] >= 0 && costs[l] < costs[best] {
			best = l
		}
	}
	return best, s
}

// appendBlock encodes vals as one framed block:
//
//	layout u8 | count uvarint | payloadLen uvarint | payload | crc32 u32
//
// where the CRC covers everything before it. The frame is appended to dst.
func appendBlock(dst []byte, vals []float64) []byte {
	layout, s := chooseLayout(vals)
	payload := encodePayload(nil, layout, s, vals)
	start := len(dst)
	dst = append(dst, layout)
	dst = appendUvarint(dst, uint64(len(vals)))
	dst = appendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return appendCRC(dst, start)
}

func encodePayload(dst []byte, layout byte, s blockStats, vals []float64) []byte {
	switch layout {
	case layoutConst:
		dst = binary.LittleEndian.AppendUint64(dst, s.firstBits)
	case layoutBitmap:
		bits := make([]byte, (len(vals)+7)/8)
		for i, v := range vals {
			if math.Float64bits(v) == oneBits {
				bits[i/8] |= 1 << uint(i%8)
			}
		}
		dst = append(dst, bits...)
	case layoutSparseOnes, layoutSparse:
		dst = appendUvarint(dst, uint64(s.nnz))
		prev := -1
		for i, v := range vals {
			if math.Float64bits(v) == 0 {
				continue
			}
			if prev < 0 {
				dst = appendUvarint(dst, uint64(i))
			} else {
				dst = appendUvarint(dst, uint64(i-prev))
			}
			prev = i
		}
		if layout == layoutSparse {
			for _, v := range vals {
				if b := math.Float64bits(v); b != 0 {
					dst = binary.LittleEndian.AppendUint64(dst, b)
				}
			}
		}
	case layoutFOR:
		w := forWidth(uint64(s.maxI - s.minI))
		dst = appendUvarint(dst, zigzag(s.minI))
		dst = append(dst, byte(w))
		for _, v := range vals {
			d := uint64(int64(v) - s.minI)
			switch w {
			case 1:
				dst = append(dst, byte(d))
			case 2:
				dst = binary.LittleEndian.AppendUint16(dst, uint16(d))
			case 4:
				dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
			default:
				dst = binary.LittleEndian.AppendUint64(dst, d)
			}
		}
	default: // layoutDense
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}
