package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/encoding"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/vfl"
)

// CellResult holds every metric the paper reports for one (dataset,
// configuration) cell. All values are real-vs-synthetic differences: lower
// is better.
type CellResult struct {
	// Utility is the absolute difference of the average classifier scores
	// (accuracy, macro-F1, macro-AUC) between models trained on real and on
	// synthetic data, both evaluated on the real test set.
	Utility ml.Scores
	// JSD and WD are the average statistical-similarity distances.
	JSD, WD float64
	// DiffCorr is the joint-table association-matrix difference.
	DiffCorr float64
	// AvgClient and AcrossClient decompose DiffCorr for the 2-client
	// partition experiment (zero when not applicable).
	AvgClient, AcrossClient float64
}

// add accumulates o into r (for averaging repeats).
func (r *CellResult) add(o CellResult) {
	r.Utility = r.Utility.Add(o.Utility)
	r.JSD += o.JSD
	r.WD += o.WD
	r.DiffCorr += o.DiffCorr
	r.AvgClient += o.AvgClient
	r.AcrossClient += o.AcrossClient
}

func (r *CellResult) scale(k float64) {
	r.Utility = r.Utility.Scale(k)
	r.JSD *= k
	r.WD *= k
	r.DiffCorr *= k
	r.AvgClient *= k
	r.AcrossClient *= k
}

// averageCells returns the element-wise mean of the results.
func averageCells(cells []CellResult) CellResult {
	var out CellResult
	for _, c := range cells {
		out.add(c)
	}
	out.scale(1 / float64(len(cells)))
	return out
}

// options builds core.Options from the scale for a given plan and seed.
func (s *Scale) options(plan vfl.Plan, enlargedGen bool, seed int64) core.Options {
	o := core.DefaultOptions()
	o.Plan = plan
	o.Rounds = s.Rounds
	o.DiscSteps = s.DiscSteps
	o.BatchSize = s.BatchSize
	o.NoiseDim = s.NoiseDim
	o.BlockDim = s.BlockDim
	o.LR = s.LR
	o.Seed = seed
	o.Parallelism = s.ClientParallelism
	if enlargedGen {
		o.GenBlockDim = 3 * s.BlockDim
	}
	return o
}

// splitDataset builds the train/test tables for one repeat.
func splitDataset(name string, s *Scale, seed int64) (*datasets.Dataset, *encoding.Table, *encoding.Table, error) {
	d, err := datasets.Generate(name, datasets.Config{Rows: s.Rows, Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed + 17))
	train, test, err := d.TrainTestSplit(rng, 0.2)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, train, test, nil
}

// reorderForAssignment returns the column order produced when a table is
// vertically split by assignment and re-concatenated party by party, plus
// the new index of the target column.
func reorderForAssignment(assignment []int, numClients, target int) (order []int, newTarget int) {
	for p := 0; p < numClients; p++ {
		for j, owner := range assignment {
			if owner != p {
				continue
			}
			if j == target {
				newTarget = len(order)
			}
			order = append(order, j)
		}
	}
	return order, newTarget
}

// runGTVCell trains a GTV system on the train split under the given column
// assignment and returns the full metric set.
func runGTVCell(dsName string, assignment []int, numClients int, opts core.Options, s *Scale, seed int64) (CellResult, error) {
	d, train, test, err := splitDataset(dsName, s, seed)
	if err != nil {
		return CellResult{}, fmt.Errorf("experiments: dataset %s: %w", dsName, err)
	}
	order, newTarget := reorderForAssignment(assignment, numClients, d.Target)

	gtv, err := core.NewFromAssignment(train, assignment, numClients, opts)
	if err != nil {
		return CellResult{}, fmt.Errorf("experiments: building GTV on %s: %w", dsName, err)
	}
	if err := gtv.Train(nil); err != nil {
		return CellResult{}, fmt.Errorf("experiments: training GTV on %s: %w", dsName, err)
	}
	synth, synthParts, err := gtv.SynthesizeParts(train.Rows())
	if err != nil {
		return CellResult{}, fmt.Errorf("experiments: synthesizing on %s: %w", dsName, err)
	}

	// Real train/test reordered to the synthetic column layout.
	trainOrdered, err := train.SelectColumns(order)
	if err != nil {
		return CellResult{}, err
	}
	testOrdered, err := test.SelectColumns(order)
	if err != nil {
		return CellResult{}, err
	}
	realParts, err := train.VerticalSplit(assignment, numClients)
	if err != nil {
		return CellResult{}, err
	}

	return computeMetrics(trainOrdered, testOrdered, synth, realParts, synthParts, newTarget, seed)
}

// runCentralizedCell trains the baseline on the unsplit train table.
func runCentralizedCell(dsName string, opts core.Options, s *Scale, seed int64) (CellResult, error) {
	d, train, test, err := splitDataset(dsName, s, seed)
	if err != nil {
		return CellResult{}, fmt.Errorf("experiments: dataset %s: %w", dsName, err)
	}
	c, err := core.NewCentralized(train, opts)
	if err != nil {
		return CellResult{}, fmt.Errorf("experiments: building baseline on %s: %w", dsName, err)
	}
	if err := c.Train(nil); err != nil {
		return CellResult{}, fmt.Errorf("experiments: training baseline on %s: %w", dsName, err)
	}
	synth, err := c.Synthesize(train.Rows())
	if err != nil {
		return CellResult{}, fmt.Errorf("experiments: synthesizing baseline on %s: %w", dsName, err)
	}
	return computeMetrics(train, test, synth, nil, nil, d.Target, seed)
}

// computeMetrics evaluates all paper metrics for one synthetic table.
func computeMetrics(train, test, synth *encoding.Table, realParts, synthParts []*encoding.Table, target int, seed int64) (CellResult, error) {
	var out CellResult
	var err error
	if out.Utility, err = ml.UtilityDifference(train, synth, test, target, seed); err != nil {
		return CellResult{}, fmt.Errorf("experiments: utility: %w", err)
	}
	sim, err := stats.Similarity(train, synth)
	if err != nil {
		return CellResult{}, fmt.Errorf("experiments: similarity: %w", err)
	}
	out.JSD, out.WD, out.DiffCorr = sim.AvgJSD, sim.AvgWD, sim.DiffCorr

	if len(realParts) > 0 {
		if out.AvgClient, err = stats.AvgClientDiff(realParts, synthParts); err != nil {
			return CellResult{}, fmt.Errorf("experiments: avg-client: %w", err)
		}
		if len(realParts) == 2 {
			out.AcrossClient, err = stats.AcrossClientDiff(realParts[0], realParts[1], synthParts[0], synthParts[1])
			if err != nil {
				return CellResult{}, fmt.Errorf("experiments: across-client: %w", err)
			}
		}
	}
	return out, nil
}

// repeatCell averages a cell runner over the scale's repeats.
func repeatCell(s *Scale, run func(seed int64) (CellResult, error)) (CellResult, error) {
	cells := make([]CellResult, 0, s.Repeats)
	for r := 0; r < s.Repeats; r++ {
		c, err := run(s.Seed + int64(r)*7919)
		if err != nil {
			return CellResult{}, err
		}
		cells = append(cells, c)
	}
	return averageCells(cells), nil
}
