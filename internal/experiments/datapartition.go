package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/shapley"
	"repro/internal/vfl"
)

// PartitionLabels are the paper's three importance-based feature divisions:
// (most-important share | remaining share + target).
var PartitionLabels = []string{"1090", "5050", "9010"}

// partitionFraction maps a label to the share of most-important features
// assigned to the client WITHOUT the target column.
func partitionFraction(label string) (float64, error) {
	switch label {
	case "1090":
		return 0.10, nil
	case "5050":
		return 0.50, nil
	case "9010":
		return 0.90, nil
	default:
		return 0, fmt.Errorf("experiments: unknown partition %q", label)
	}
}

// DataPartitionResult reproduces Figs. 10/11 and Table 2 for one partition
// plan: per-dataset, per-division metrics.
type DataPartitionResult struct {
	// Plan is the partition plan the experiment ran under (the paper uses
	// D2_0G2_0 for Fig. 10 and D2_0G0_2 for Fig. 11).
	Plan vfl.Plan
	// Datasets lists row labels in display order.
	Datasets []string
	// Cells maps dataset -> partition label -> metrics.
	Cells map[string]map[string]CellResult
}

// RunDataPartition reproduces the training-data partition experiment
// (§4.3.2): rank features by Shapley importance, place the top fraction on
// client 0 and the rest plus the target column on client 1. The paper's
// claims: quality degrades 1090 -> 5050 -> 9010, and the G0_2
// (generator-on-server) plan is less affected than G2_0.
func RunDataPartition(s Scale, plan vfl.Plan) (*DataPartitionResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	out := &DataPartitionResult{
		Plan:     plan,
		Datasets: s.Datasets,
		Cells:    make(map[string]map[string]CellResult, len(s.Datasets)),
	}
	type job struct{ dataset, partition string }
	var jobs []job
	for _, ds := range s.Datasets {
		out.Cells[ds] = make(map[string]CellResult, len(PartitionLabels))
		for _, p := range PartitionLabels {
			jobs = append(jobs, job{dataset: ds, partition: p})
		}
	}
	results := make([]CellResult, len(jobs))
	err := forEach(len(jobs), s.Parallelism, func(i int) error {
		j := jobs[i]
		frac, err := partitionFraction(j.partition)
		if err != nil {
			return err
		}
		cell, err := repeatCell(&s, func(seed int64) (CellResult, error) {
			d, train, _, err := splitDataset(j.dataset, &s, seed)
			if err != nil {
				return CellResult{}, err
			}
			cfg := shapley.DefaultConfig()
			cfg.Seed = seed
			cfg.Permutations = 6
			cfg.Epochs = 50
			head, _, err := shapley.TopFraction(train, d.Target, frac, cfg)
			if err != nil {
				return CellResult{}, fmt.Errorf("shapley split: %w", err)
			}
			// Client 0 holds the most-important fraction; client 1 holds
			// the remainder and always the target column.
			assignment := make([]int, d.Table.Cols())
			for k := range assignment {
				assignment[k] = 1
			}
			for _, c := range head {
				assignment[c] = 0
			}
			return runGTVCell(j.dataset, assignment, 2, s.options(plan, false, seed), &s, seed)
		})
		if err != nil {
			return fmt.Errorf("experiments: data partition %s/%s: %w", j.dataset, j.partition, err)
		}
		results[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		out.Cells[j.dataset][j.partition] = results[i]
	}
	return out, nil
}

// Render prints the paper-style figure data (Figs. 10/11) including the
// Diff.Corr values reported separately in Table 2.
func (r *DataPartitionResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Data partition with %s: differences vs real data (lower is better)\n", r.Plan.Name())
	fmt.Fprintln(tw, "dataset\tpartition\tΔaccuracy\tΔF1\tΔAUC\tavg JSD\tavg WD\tDiff.Corr")
	for _, ds := range r.Datasets {
		for _, p := range PartitionLabels {
			cell := r.Cells[ds][p]
			fmt.Fprintf(tw, "%s\t%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.3f\n",
				ds, p, cell.Utility.Accuracy, cell.Utility.F1, cell.Utility.AUC,
				cell.JSD, cell.WD, cell.DiffCorr)
		}
	}
	return tw.Flush()
}

// RenderTable2 prints Table 2 (Diff.Corr by partition) for a pair of
// data-partition runs, matching the paper's layout.
func RenderTable2(w io.Writer, runs []*DataPartitionResult) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 2: Diff.Corr on data partition (lower is better)")
	header := "partition-distribution"
	if len(runs) > 0 {
		for _, ds := range runs[0].Datasets {
			header += "\t" + ds
		}
	}
	fmt.Fprintln(tw, header)
	for _, run := range runs {
		for _, p := range PartitionLabels {
			row := fmt.Sprintf("%s-%s", run.Plan.Name(), p)
			for _, ds := range run.Datasets {
				row += fmt.Sprintf("\t%.2f", run.Cells[ds][p].DiffCorr)
			}
			fmt.Fprintln(tw, row)
		}
	}
	return tw.Flush()
}
