package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/vfl"
)

// GeneratorSettings are the paper's two generator sizings in the
// client-count experiment: default (sum of block widths constant) and
// enlarged (3x block width).
var GeneratorSettings = []string{"default", "enlarged"}

// ClientCountResult reproduces Figs. 12/13 and Table 3 for one plan.
type ClientCountResult struct {
	Plan vfl.Plan
	// ClientCounts lists the client counts swept (the paper uses 2-5).
	ClientCounts []int
	// Avg maps generator setting -> client count -> dataset-averaged cell.
	Avg map[string]map[int]CellResult
	// DiffCorr maps generator setting -> client count -> dataset ->
	// Diff.Corr (Table 3's cells).
	DiffCorr map[string]map[int]map[string]float64
}

// RunClientCount reproduces the client-number variation experiment
// (§4.3.3): randomly and evenly distribute columns across 2-5 clients and
// measure quality under the default and enlarged generator settings. The
// paper's claims: quality degrades as clients increase, and the enlarged
// generator degrades less.
func RunClientCount(s Scale, plan vfl.Plan, clientCounts []int) (*ClientCountResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(clientCounts) == 0 {
		clientCounts = []int{2, 3, 4, 5}
	}
	out := &ClientCountResult{
		Plan:         plan,
		ClientCounts: clientCounts,
		Avg:          make(map[string]map[int]CellResult),
		DiffCorr:     make(map[string]map[int]map[string]float64),
	}
	for _, g := range GeneratorSettings {
		out.Avg[g] = make(map[int]CellResult, len(clientCounts))
		out.DiffCorr[g] = make(map[int]map[string]float64, len(clientCounts))
		for _, k := range clientCounts {
			out.DiffCorr[g][k] = make(map[string]float64, len(s.Datasets))
		}
	}

	type job struct {
		setting string
		clients int
		dataset string
	}
	var jobs []job
	for _, g := range GeneratorSettings {
		for _, k := range clientCounts {
			for _, ds := range s.Datasets {
				jobs = append(jobs, job{setting: g, clients: k, dataset: ds})
			}
		}
	}
	results := make([]CellResult, len(jobs))
	err := forEach(len(jobs), s.Parallelism, func(i int) error {
		j := jobs[i]
		cell, err := repeatCell(&s, func(seed int64) (CellResult, error) {
			d, _, _, err := splitDataset(j.dataset, &s, seed)
			if err != nil {
				return CellResult{}, err
			}
			assignment, err := randomEvenAssignment(rand.New(rand.NewSource(seed+31)), d.Table.Cols(), j.clients)
			if err != nil {
				return CellResult{}, err
			}
			return runGTVCell(j.dataset, assignment, j.clients,
				s.options(plan, j.setting == "enlarged", seed), &s, seed)
		})
		if err != nil {
			return fmt.Errorf("experiments: client count %s k=%d on %s: %w", j.setting, j.clients, j.dataset, err)
		}
		results[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	bySetting := make(map[string]map[int][]CellResult)
	for _, g := range GeneratorSettings {
		bySetting[g] = make(map[int][]CellResult)
	}
	for i, j := range jobs {
		bySetting[j.setting][j.clients] = append(bySetting[j.setting][j.clients], results[i])
		out.DiffCorr[j.setting][j.clients][j.dataset] = results[i].DiffCorr
	}
	for _, g := range GeneratorSettings {
		for _, k := range clientCounts {
			out.Avg[g][k] = averageCells(bySetting[g][k])
		}
	}
	return out, nil
}

// randomEvenAssignment shuffles columns and deals them into numClients
// near-equal groups (the paper's "randomly and evenly distribute").
func randomEvenAssignment(rng *rand.Rand, numCols, numClients int) ([]int, error) {
	if numClients <= 0 || numCols < numClients {
		return nil, fmt.Errorf("experiments: cannot place %d columns on %d clients", numCols, numClients)
	}
	perm := rng.Perm(numCols)
	out := make([]int, numCols)
	for pos, col := range perm {
		out[col] = pos % numClients
	}
	return out, nil
}

// Render prints the paper-style figure data (Figs. 12/13).
func (r *ClientCountResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Client-count variation with %s: differences vs real data, averaged over datasets (lower is better)\n", r.Plan.Name())
	fmt.Fprintln(tw, "generator\tclients\tΔaccuracy\tΔF1\tΔAUC\tavg JSD\tavg WD")
	for _, g := range GeneratorSettings {
		for _, k := range r.ClientCounts {
			cell := r.Avg[g][k]
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
				g, k, cell.Utility.Accuracy, cell.Utility.F1, cell.Utility.AUC, cell.JSD, cell.WD)
		}
	}
	return tw.Flush()
}

// RenderTable3 prints Table 3 (Diff.Corr by client count,
// default/enlarged) for a pair of client-count runs.
func RenderTable3(w io.Writer, runs []*ClientCountResult, datasetOrder []string) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 3: Diff.Corr on client-number variation (default generator / enlarged generator)")
	header := "partition-#client"
	for _, ds := range datasetOrder {
		header += "\t" + ds
	}
	fmt.Fprintln(tw, header)
	for _, run := range runs {
		for _, k := range run.ClientCounts {
			row := fmt.Sprintf("%s-%d", run.Plan.Name(), k)
			for _, ds := range datasetOrder {
				row += fmt.Sprintf("\t%.2f/%.2f", run.DiffCorr["default"][k][ds], run.DiffCorr["enlarged"][k][ds])
			}
			fmt.Fprintln(tw, row)
		}
	}
	return tw.Flush()
}
