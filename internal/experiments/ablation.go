package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/vfl"
)

// ShuffleAttackRow is one dataset's reconstruction-attack outcome.
type ShuffleAttackRow struct {
	Dataset        string
	WithoutShuffle float64
	WithShuffle    float64
	Chance         float64
	Majority       float64
}

// ShuffleAttackResult is the training-with-shuffling ablation (the paper's
// Figs. 5-6 argument, quantified): the curious server's reconstruction
// accuracy of clients' categorical columns with and without the shuffle.
type ShuffleAttackResult struct {
	Rows []ShuffleAttackRow
	// RoundsObserved is the number of simulated training rounds.
	RoundsObserved int
}

// RunShuffleAttack quantifies the §3.1.5 privacy mechanism on every
// dataset: split columns across two clients, replay Algorithm 1's
// conditional-vector traffic, and measure how much of the categorical data
// a curious server reconstructs.
func RunShuffleAttack(s Scale) (*ShuffleAttackResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	rounds := s.Rounds
	if rounds < 50 {
		rounds = 50
	}
	out := &ShuffleAttackResult{
		Rows:           make([]ShuffleAttackRow, len(s.Datasets)),
		RoundsObserved: rounds,
	}
	err := forEach(len(s.Datasets), s.Parallelism, func(i int) error {
		name := s.Datasets[i]
		d, train, _, err := splitDataset(name, &s, s.Seed)
		if err != nil {
			return err
		}
		assignment, err := core.EvenAssignment(d.Table.Cols(), 2)
		if err != nil {
			return err
		}
		parts, err := train.VerticalSplit(assignment, 2)
		if err != nil {
			return err
		}
		res, err := attack.RunShufflingAblation(parts, attack.Config{
			Rounds:        rounds,
			Batch:         s.BatchSize,
			Seed:          s.Seed,
			ShuffleSecret: s.Seed + 4242,
		})
		if err != nil {
			return fmt.Errorf("experiments: shuffle attack on %s: %w", name, err)
		}
		out.Rows[i] = ShuffleAttackRow{
			Dataset:        name,
			WithoutShuffle: res.WithoutShuffle,
			WithShuffle:    res.WithShuffle,
			Chance:         res.ChanceLevel,
			Majority:       res.MajorityLevel,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render prints the ablation table.
func (r *ShuffleAttackResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Ablation: curious-server reconstruction accuracy after %d observed rounds\n", r.RoundsObserved)
	fmt.Fprintln(tw, "dataset\twithout shuffling\twith shuffling\tchance level\tmajority baseline")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\n",
			row.Dataset, row.WithoutShuffle, row.WithShuffle, row.Chance, row.Majority)
	}
	return tw.Flush()
}

// CommRow is one configuration's per-round communication cost.
type CommRow struct {
	Config   string
	Stats    vfl.CommStats
	PerRound float64
}

// CommResult is the communication-overhead ablation across the nine
// partition plans and the enlarged-generator setting (the cost dimension
// §4.3.1 uses to choose between D2_0G2_0 and D2_0G0_2).
type CommResult struct {
	Rows []CommRow
}

// RunCommOverhead trains each configuration for a few rounds on one
// dataset and reports measured payload bytes per round.
func RunCommOverhead(s Scale) (*CommResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	dataset := s.Datasets[0]
	type cfg struct {
		label    string
		plan     vfl.Plan
		enlarged bool
	}
	var cfgs []cfg
	for _, p := range vfl.StandardPlans() {
		cfgs = append(cfgs, cfg{label: p.Name(), plan: p})
	}
	cfgs = append(cfgs,
		cfg{label: "D2_0G0_2+enlarged", plan: vfl.Plan{DiscServer: 2, GenClient: 2}, enlarged: true},
		cfg{label: "D2_0G2_0+enlarged", plan: vfl.Plan{DiscServer: 2, GenServer: 2}, enlarged: true},
	)

	rounds := 3
	out := &CommResult{Rows: make([]CommRow, len(cfgs))}
	err := forEach(len(cfgs), s.Parallelism, func(i int) error {
		c := cfgs[i]
		d, train, _, err := splitDataset(dataset, &s, s.Seed)
		if err != nil {
			return err
		}
		assignment, err := core.EvenAssignment(d.Table.Cols(), 2)
		if err != nil {
			return err
		}
		opts := s.options(c.plan, c.enlarged, s.Seed)
		opts.Rounds = rounds
		g, err := core.NewFromAssignment(train, assignment, 2, opts)
		if err != nil {
			return err
		}
		if err := g.Train(nil); err != nil {
			return err
		}
		stats := g.CommStats()
		out.Rows[i] = CommRow{Config: c.label, Stats: stats, PerRound: stats.PerRound()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render prints the overhead table.
func (r *CommResult) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ablation: measured server<->client payload per training round (2 clients)")
	fmt.Fprintln(tw, "config\tbytes/round\tgen slices\tdisc logits\tgrads\tslice grads")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%d\t%d\n",
			row.Config, row.PerRound, row.Stats.GenSlicesSent, row.Stats.DiscLogitsReceived,
			row.Stats.GradsSent, row.Stats.SliceGradsReceived)
	}
	return tw.Flush()
}
