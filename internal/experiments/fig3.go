package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/encoding"
	"repro/internal/ml"
	"repro/internal/shapley"
)

// Fig3Row is one dataset's motivation-case-study result: the F1-score of an
// MLP trained on (A) the top-10% most important features, (B) the remaining
// 90%, and (C) all features.
type Fig3Row struct {
	Dataset  string
	SettingA float64
	SettingB float64
	SettingC float64
}

// Fig3Result reproduces Fig. 3 (motivation case study).
type Fig3Result struct {
	Rows []Fig3Row
}

// RunFig3 reproduces the motivation case study: Shapley-rank features with
// an MLP, then compare target-prediction F1 across the three feature
// settings. The paper's claim is Setting C >= A and C >= B on every
// dataset.
func RunFig3(s Scale) (*Fig3Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	out := &Fig3Result{Rows: make([]Fig3Row, len(s.Datasets))}
	err := forEach(len(s.Datasets), s.Parallelism, func(i int) error {
		name := s.Datasets[i]
		d, train, test, err := splitDataset(name, &s, s.Seed)
		if err != nil {
			return err
		}
		cfg := shapley.DefaultConfig()
		cfg.Seed = s.Seed
		cfg.Permutations = 8
		cfg.Epochs = 60
		head, tail, err := shapley.TopFraction(train, d.Target, 0.1, cfg)
		if err != nil {
			return fmt.Errorf("experiments: shapley on %s: %w", name, err)
		}
		all := append(append([]int(nil), head...), tail...)
		row := Fig3Row{Dataset: name}
		settings := []struct {
			cols []int
			dst  *float64
		}{
			{head, &row.SettingA},
			{tail, &row.SettingB},
			{all, &row.SettingC},
		}
		for _, st := range settings {
			f1, err := mlpF1(train, test, d.Target, st.cols, s.Seed)
			if err != nil {
				return fmt.Errorf("experiments: fig3 %s: %w", name, err)
			}
			*st.dst = f1
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mlpF1 trains the case study's MLP (one hidden layer of 100 neurons) on
// the selected feature columns plus the target and returns the macro F1 on
// the test split.
func mlpF1(train, test *encoding.Table, target int, featureCols []int, seed int64) (float64, error) {
	cols := append([]int(nil), featureCols...)
	cols = append(cols, target)
	sort.Ints(cols)
	newTarget := sort.SearchInts(cols, target)

	subTrain, err := train.SelectColumns(cols)
	if err != nil {
		return 0, err
	}
	subTest, err := test.SelectColumns(cols)
	if err != nil {
		return 0, err
	}
	feat, err := ml.NewFeaturizer(subTrain, newTarget)
	if err != nil {
		return 0, err
	}
	xTrain, yTrain, err := feat.Transform(subTrain)
	if err != nil {
		return 0, err
	}
	xTest, yTest, err := feat.Transform(subTest)
	if err != nil {
		return 0, err
	}
	model := &ml.MLP{Hidden: 100, Epochs: 100, Seed: seed}
	if err := model.Fit(xTrain, yTrain, feat.NumClasses()); err != nil {
		return 0, err
	}
	return ml.MacroF1(ml.Predict(model, xTest), yTest, feat.NumClasses()), nil
}

// Render prints the paper-style figure data.
func (r *Fig3Result) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig 3: Motivation case study (MLP F1-score; higher is better)")
	fmt.Fprintln(tw, "dataset\tSetting-A (top 10%)\tSetting-B (bottom 90%)\tSetting-C (all)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\n", row.Dataset, row.SettingA, row.SettingB, row.SettingC)
	}
	return tw.Flush()
}
