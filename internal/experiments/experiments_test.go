package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vfl"
)

func TestScaleValidate(t *testing.T) {
	s := Scale{}
	if err := s.validate(); err == nil {
		t.Fatal("zero scale must fail")
	}
	s = DefaultScale()
	if err := s.validate(); err != nil {
		t.Fatalf("default scale invalid: %v", err)
	}
	if s.Parallelism <= 0 {
		t.Fatal("validate must fill parallelism")
	}
}

func TestForEachRunsAll(t *testing.T) {
	done := make([]bool, 20)
	err := forEach(20, 4, func(i int) error {
		done[i] = true
		return nil
	})
	if err != nil {
		t.Fatalf("forEach: %v", err)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("index %d not executed", i)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	err := forEach(10, 3, func(i int) error {
		if i == 7 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("forEach error = %v", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestReorderForAssignment(t *testing.T) {
	// 4 columns, assignment (1,0,1,0), target 2.
	order, newTarget := reorderForAssignment([]int{1, 0, 1, 0}, 2, 2)
	want := []int{1, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v want %v", order, want)
		}
	}
	if newTarget != 3 {
		t.Fatalf("newTarget = %d want 3", newTarget)
	}
}

func TestRandomEvenAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := randomEvenAssignment(rng, 11, 3)
	if err != nil {
		t.Fatalf("randomEvenAssignment: %v", err)
	}
	counts := make([]int, 3)
	for _, p := range a {
		counts[p]++
	}
	for _, c := range counts {
		if c < 3 || c > 4 {
			t.Fatalf("uneven counts %v", counts)
		}
	}
	if _, err := randomEvenAssignment(rng, 2, 3); err == nil {
		t.Fatal("expected error")
	}
}

func TestPartitionFraction(t *testing.T) {
	for _, tc := range []struct {
		label string
		want  float64
	}{{"1090", 0.10}, {"5050", 0.50}, {"9010", 0.90}} {
		got, err := partitionFraction(tc.label)
		if err != nil || got != tc.want {
			t.Fatalf("partitionFraction(%s) = %v, %v", tc.label, got, err)
		}
	}
	if _, err := partitionFraction("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestAverageCells(t *testing.T) {
	a := CellResult{JSD: 0.2, WD: 0.4, DiffCorr: 2}
	b := CellResult{JSD: 0.4, WD: 0.8, DiffCorr: 4}
	avg := averageCells([]CellResult{a, b})
	const tol = 1e-12
	if diff := avg.JSD - 0.3; diff > tol || diff < -tol {
		t.Fatalf("averageCells JSD = %v", avg.JSD)
	}
	if diff := avg.WD - 0.6; diff > tol || diff < -tol {
		t.Fatalf("averageCells WD = %v", avg.WD)
	}
	if diff := avg.DiffCorr - 3; diff > tol || diff < -tol {
		t.Fatalf("averageCells DiffCorr = %v", avg.DiffCorr)
	}
}

func TestRunFig3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	s := SmokeScale()
	s.Datasets = []string{"loan"}
	res, err := RunFig3(s)
	if err != nil {
		t.Fatalf("RunFig3: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Dataset != "loan" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	for _, v := range []float64{res.Rows[0].SettingA, res.Rows[0].SettingB, res.Rows[0].SettingC} {
		if v < 0 || v > 1 {
			t.Fatalf("F1 %v out of range", v)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Setting-C") {
		t.Fatalf("render output missing headers:\n%s", buf.String())
	}
}

func TestRunFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	s := SmokeScale()
	s.Datasets = []string{"loan"}
	res, err := RunFig8(s)
	if err != nil {
		t.Fatalf("RunFig8: %v", err)
	}
	if len(res.Configs) != 10 {
		t.Fatalf("configs = %d want 10", len(res.Configs))
	}
	if res.Configs[0] != CentralizedLabel {
		t.Fatalf("first config = %s", res.Configs[0])
	}
	for _, c := range res.Configs {
		cell, ok := res.Cells[c]
		if !ok {
			t.Fatalf("missing cell for %s", c)
		}
		if cell.JSD < 0 || cell.WD < 0 || cell.DiffCorr < 0 {
			t.Fatalf("negative distances in %s: %+v", c, cell)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "centralized") {
		t.Fatal("render output missing baseline row")
	}
}

func TestRunDataPartitionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	s := SmokeScale()
	s.Datasets = []string{"loan"}
	plan := vfl.Plan{DiscServer: 2, GenClient: 2}
	res, err := RunDataPartition(s, plan)
	if err != nil {
		t.Fatalf("RunDataPartition: %v", err)
	}
	for _, p := range PartitionLabels {
		if _, ok := res.Cells["loan"][p]; !ok {
			t.Fatalf("missing partition %s", p)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if err := RenderTable2(&buf, []*DataPartitionResult{res}); err != nil {
		t.Fatalf("RenderTable2: %v", err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("table 2 render missing")
	}
}

func TestRunClientCountSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	s := SmokeScale()
	s.Datasets = []string{"loan"}
	plan := vfl.Plan{DiscServer: 2, GenClient: 2}
	res, err := RunClientCount(s, plan, []int{2, 3})
	if err != nil {
		t.Fatalf("RunClientCount: %v", err)
	}
	for _, g := range GeneratorSettings {
		for _, k := range []int{2, 3} {
			if _, ok := res.Avg[g][k]; !ok {
				t.Fatalf("missing cell %s/%d", g, k)
			}
			if _, ok := res.DiffCorr[g][k]["loan"]; !ok {
				t.Fatalf("missing diffcorr %s/%d", g, k)
			}
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if err := RenderTable3(&buf, []*ClientCountResult{res}, s.Datasets); err != nil {
		t.Fatalf("RenderTable3: %v", err)
	}
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("table 3 render missing")
	}
}

func TestRunShuffleAttackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	s := SmokeScale()
	s.Datasets = []string{"loan"}
	res, err := RunShuffleAttack(s)
	if err != nil {
		t.Fatalf("RunShuffleAttack: %v", err)
	}
	row := res.Rows[0]
	if row.WithoutShuffle <= row.WithShuffle {
		t.Fatalf("attack must be stronger without shuffling: %+v", row)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "reconstruction") {
		t.Fatal("render output missing title")
	}
}

func TestRunCommOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment in -short mode")
	}
	s := SmokeScale()
	s.Datasets = []string{"loan"}
	res, err := RunCommOverhead(s)
	if err != nil {
		t.Fatalf("RunCommOverhead: %v", err)
	}
	if len(res.Rows) != 11 { // 9 plans + 2 enlarged variants
		t.Fatalf("rows = %d want 11", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PerRound <= 0 {
			t.Fatalf("config %s has no traffic", row.Config)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "bytes/round") {
		t.Fatal("render output missing header")
	}
}
