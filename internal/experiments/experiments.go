// Package experiments regenerates every table and figure of the GTV
// paper's evaluation (§4): the motivation case study (Fig. 3), the
// neural-network partition study (Fig. 8), the training-data partition
// study (Figs. 10-11, Table 2) and the client-count study (Figs. 12-13,
// Table 3).
//
// Experiments run at a configurable Scale. The default scale is sized for a
// laptop CPU (hundreds of rows, hundreds of rounds, width-64 blocks); the
// paper's absolute numbers used 50k rows, width-256 blocks and GPU-scale
// training, so only the *shape* of results — orderings, trends,
// crossovers — is expected to match. See EXPERIMENTS.md for the recorded
// comparison.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/datasets"
)

// Scale controls the compute budget of every experiment.
type Scale struct {
	// Rows is the per-dataset row count (the paper samples 50k).
	Rows int
	// Rounds, DiscSteps, BatchSize, BlockDim, NoiseDim and LR configure
	// GAN training for every cell.
	Rounds, DiscSteps, BatchSize, BlockDim, NoiseDim int
	LR                                               float64
	// Repeats averages every cell over this many seeds (the paper uses 3).
	Repeats int
	// Parallelism bounds concurrently-running cells (0 = NumCPU).
	Parallelism int
	// ClientParallelism bounds how many clients each GTV server drives
	// concurrently per round (0 = all, 1 = sequential); results are
	// bit-identical across settings, so it is purely a throughput knob.
	ClientParallelism int
	// Datasets selects the datasets to run on (default: all five).
	Datasets []string
	// Seed is the base random seed.
	Seed int64
}

// DefaultScale returns the laptop-scale configuration used by the recorded
// EXPERIMENTS.md results.
func DefaultScale() Scale {
	return Scale{
		Rows:      500,
		Rounds:    300,
		DiscSteps: 3,
		BatchSize: 64,
		BlockDim:  64,
		NoiseDim:  24,
		LR:        5e-4,
		Repeats:   1,
		Datasets:  datasets.Names(),
		Seed:      1,
	}
}

// SmokeScale returns a minimal configuration for tests: a handful of
// rounds, two datasets, tiny networks.
func SmokeScale() Scale {
	return Scale{
		Rows:      160,
		Rounds:    4,
		DiscSteps: 1,
		BatchSize: 32,
		BlockDim:  24,
		NoiseDim:  8,
		LR:        5e-4,
		Repeats:   1,
		Datasets:  []string{"loan", "adult"},
		Seed:      1,
	}
}

func (s *Scale) validate() error {
	if s.Rows < 50 {
		return fmt.Errorf("experiments: %d rows is too few", s.Rows)
	}
	if s.Rounds <= 0 || s.BatchSize <= 0 {
		return fmt.Errorf("experiments: rounds %d and batch %d must be positive", s.Rounds, s.BatchSize)
	}
	if s.Repeats <= 0 {
		s.Repeats = 1
	}
	if s.Parallelism <= 0 {
		s.Parallelism = runtime.NumCPU()
	}
	if len(s.Datasets) == 0 {
		s.Datasets = datasets.Names()
	}
	if s.LR <= 0 {
		s.LR = 5e-4
	}
	return nil
}

// forEach runs fn(i) for i in [0, n) across at most parallelism goroutines
// and returns the first error.
func forEach(n, parallelism int, fn func(i int) error) error {
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
