package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/vfl"
)

// CentralizedLabel names the baseline row in partition results.
const CentralizedLabel = "centralized"

// Fig8Result reproduces Fig. 8: the nine neural-network partitions plus the
// centralized baseline, each averaged over the selected datasets.
type Fig8Result struct {
	// Configs lists row labels in display order (centralized first).
	Configs []string
	// Cells maps config label to its dataset-averaged metrics.
	Cells map[string]CellResult
}

// RunFig8 reproduces the neural-network partition experiment (§4.3.1): for
// every partition plan, split each dataset's columns evenly across two
// clients (column order preserved) and measure all quality metrics. The
// paper's claims: the centralized baseline is best everywhere; the three
// D2_0* plans beat the other six; D2_0G2_0 and D2_0G0_2 are comparable.
func RunFig8(s Scale) (*Fig8Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	plans := vfl.StandardPlans()
	configs := make([]string, 0, len(plans)+1)
	configs = append(configs, CentralizedLabel)
	for _, p := range plans {
		configs = append(configs, p.Name())
	}

	type job struct {
		config  string
		plan    vfl.Plan
		central bool
		dataset string
	}
	var jobs []job
	for _, ds := range s.Datasets {
		jobs = append(jobs, job{config: CentralizedLabel, central: true, dataset: ds})
		for _, p := range plans {
			jobs = append(jobs, job{config: p.Name(), plan: p, dataset: ds})
		}
	}
	results := make([]CellResult, len(jobs))
	err := forEach(len(jobs), s.Parallelism, func(i int) error {
		j := jobs[i]
		cell, err := repeatCell(&s, func(seed int64) (CellResult, error) {
			if j.central {
				return runCentralizedCell(j.dataset, s.options(vfl.Plan{DiscServer: 2, GenClient: 2}, false, seed), &s, seed)
			}
			d, _, _, err := splitDataset(j.dataset, &s, seed)
			if err != nil {
				return CellResult{}, err
			}
			assignment, err := core.EvenAssignment(d.Table.Cols(), 2)
			if err != nil {
				return CellResult{}, err
			}
			return runGTVCell(j.dataset, assignment, 2, s.options(j.plan, false, seed), &s, seed)
		})
		if err != nil {
			return fmt.Errorf("experiments: fig8 %s on %s: %w", j.config, j.dataset, err)
		}
		results[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Average each config over datasets.
	byConfig := make(map[string][]CellResult, len(configs))
	for i, j := range jobs {
		byConfig[j.config] = append(byConfig[j.config], results[i])
	}
	out := &Fig8Result{Configs: configs, Cells: make(map[string]CellResult, len(configs))}
	for _, c := range configs {
		out.Cells[c] = averageCells(byConfig[c])
	}
	return out, nil
}

// Render prints the paper-style figure data.
func (r *Fig8Result) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig 8: Neural-network partition (differences vs real data, averaged over datasets; lower is better)")
	fmt.Fprintln(tw, "config\tΔaccuracy\tΔF1\tΔAUC\tavg JSD\tavg WD\tavg-client corr\tacross-client corr")
	for _, c := range r.Configs {
		cell := r.Cells[c]
		if c == CentralizedLabel {
			// No per-client decomposition exists for the unsplit baseline.
			fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t-\t-\n",
				c, cell.Utility.Accuracy, cell.Utility.F1, cell.Utility.AUC,
				cell.JSD, cell.WD)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			c, cell.Utility.Accuracy, cell.Utility.F1, cell.Utility.AUC,
			cell.JSD, cell.WD, cell.AvgClient, cell.AcrossClient)
	}
	return tw.Flush()
}
