// Package snap implements gtvsnap, the versioned binary snapshot format
// behind -checkpoint-dir/-resume: a durable capture of everything the
// training trajectory depends on, pinned byte-for-byte by golden fixtures
// the way testdata/wire pins gtvwire.
//
// A snapshot file is a fixed header followed by length-prefixed sections,
// each integrity-checked independently:
//
//	file    := header section*
//	header  := magic "GTVSNP" | version u8 | kind u8            (8 bytes)
//	section := id u8 | len u64 | payload | crc32(payload) u32   (13+len bytes)
//
// All integers are little-endian, matching gtvwire. The version byte
// covers the whole file layout including every section payload: any
// incompatible change — reordering fields, changing a width, adding a
// mandatory section — bumps Version, and the golden-fixture test fails
// until it is bumped. Section ids are scoped by the kind byte (a server
// snapshot and a client snapshot may reuse an id for different payloads);
// within one kind ids are append-only. The per-section CRC (IEEE CRC-32)
// localizes corruption: a flipped bit in one section names that section in
// the error instead of producing a plausible-but-wrong weight matrix.
//
// Decoding is defensive in the same way the wire codec is: every length is
// bounded by the bytes actually remaining, so a corrupt prefix cannot make
// the reader allocate unboundedly (FuzzSnapshotDecode holds it to that),
// and trailing bytes after the last section are rejected.
package snap

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

const (
	// Version is bumped on any incompatible snapshot-format change.
	// Version 2: server images carry per-method wire-byte tallies in the
	// comm section and the GradTopK error-feedback section (secSTopKEF),
	// and the config fingerprint includes the grad-topk fraction.
	Version = 2
	// headerLen is the fixed file header size: magic, version, kind.
	headerLen = 8
	// sectionOverhead is the per-section framing: id, length, CRC.
	sectionOverhead = 1 + 8 + 4
)

// magic identifies a gtvsnap file; it is deliberately not valid UTF-8-free
// ASCII-only so `file`-style sniffing and humans in hexdumps both spot it.
var magic = [6]byte{'G', 'T', 'V', 'S', 'N', 'P'}

// Snapshot kinds: which trainer state a file captures.
const (
	KindCentralized = 1 // gan.Centralized
	KindServer      = 2 // vfl.Server, including per-client blobs
	KindClient      = 3 // one vfl client's bottom-model state
)

// Section is one decoded snapshot section. Payload aliases the input
// buffer passed to Decode; callers that outlive the buffer must copy.
type Section struct {
	ID      byte
	Payload []byte
}

// Snapshot is one decoded snapshot file.
type Snapshot struct {
	Kind     byte
	Sections []Section
}

// Section returns the payload of the first section with the given id, or
// nil when absent. Repeated ids (per-client blobs) use All.
func (s *Snapshot) Section(id byte) []byte {
	for _, sec := range s.Sections {
		if sec.ID == id {
			return sec.Payload
		}
	}
	return nil
}

// Need returns a decoder over the first section with the given id, or an
// error naming the missing section — the shape restore paths want, where
// every section is mandatory.
func (s *Snapshot) Need(id byte, name string) (*Dec, error) {
	for _, sec := range s.Sections {
		if sec.ID == id {
			return NewDec(sec.Payload), nil
		}
	}
	return nil, fmt.Errorf("gtvsnap: snapshot is missing the %s section (id %d)", name, id)
}

// All returns the payloads of every section with the given id, in file
// order.
func (s *Snapshot) All(id byte) [][]byte {
	var out [][]byte
	for _, sec := range s.Sections {
		if sec.ID == id {
			out = append(out, sec.Payload)
		}
	}
	return out
}

// Builder accumulates an encoded snapshot in memory. Sections are framed
// as they are added; Bytes returns the finished file image.
type Builder struct {
	buf []byte
}

// NewBuilder starts a snapshot of the given kind.
func NewBuilder(kind byte) *Builder {
	b := &Builder{buf: make([]byte, 0, 1<<16)}
	b.buf = append(b.buf, magic[:]...)
	b.buf = append(b.buf, Version, kind)
	return b
}

// Section appends one section whose payload is produced by encode. The
// length prefix and CRC are filled in after encode runs, so the callback
// just writes fields in order.
func (b *Builder) Section(id byte, encode func(*Enc)) {
	b.buf = append(b.buf, id)
	lenAt := len(b.buf)
	b.buf = append(b.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	e := &Enc{buf: b.buf}
	encode(e)
	b.buf = e.buf
	payload := b.buf[lenAt+8:]
	putU64(b.buf[lenAt:lenAt+8], uint64(len(payload)))
	sum := crc32.ChecksumIEEE(payload)
	b.buf = appendU32(b.buf, sum)
}

// Bytes returns the complete encoded snapshot.
func (b *Builder) Bytes() []byte { return b.buf }

// Decode parses and verifies a snapshot image: magic, version, section
// framing and per-section CRCs. Section payloads alias data.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("gtvsnap: truncated header: %d bytes", len(data))
	}
	if [6]byte(data[:6]) != magic {
		return nil, errors.New("gtvsnap: bad magic: not a snapshot file")
	}
	if data[6] != Version {
		return nil, fmt.Errorf("gtvsnap: unsupported snapshot version %d (have %d)", data[6], Version)
	}
	kind := data[7]
	if kind != KindCentralized && kind != KindServer && kind != KindClient {
		return nil, fmt.Errorf("gtvsnap: unknown snapshot kind %d", kind)
	}
	s := &Snapshot{Kind: kind}
	rest := data[headerLen:]
	for len(rest) > 0 {
		if len(rest) < sectionOverhead {
			return nil, fmt.Errorf("gtvsnap: truncated section header: %d trailing bytes", len(rest))
		}
		id := rest[0]
		n := getU64(rest[1:9])
		// Bounding by the bytes actually present both rejects truncated
		// files and keeps a corrupt length from driving allocation.
		if n > uint64(len(rest)-sectionOverhead) {
			return nil, fmt.Errorf("gtvsnap: section %d length %d exceeds remaining %d bytes", id, n, len(rest)-sectionOverhead)
		}
		payload := rest[9 : 9+n]
		want := getU32(rest[9+n : 9+n+4])
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, fmt.Errorf("gtvsnap: section %d CRC mismatch: file %08x, computed %08x", id, want, got)
		}
		s.Sections = append(s.Sections, Section{ID: id, Payload: payload})
		rest = rest[sectionOverhead+n:]
	}
	return s, nil
}

// ReadFile loads and decodes a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteFileAtomic durably replaces path with data: the bytes go to a
// temporary file in the same directory, are synced, and the temp file is
// renamed over path. A crash or write failure at any point leaves the
// previous file intact — the crash-safety test injects a failing writer
// mid-stream and asserts exactly that.
func WriteFileAtomic(path string, data []byte) error {
	return writeFileAtomic(path, data, nil)
}

// writeFileAtomic is WriteFileAtomic with an injectable writer wrapper so
// tests can force mid-write failures without touching the filesystem
// layer.
func writeFileAtomic(path string, data []byte, wrap func(io.Writer) io.Writer) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".gtvsnap-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	var w io.Writer = f
	if wrap != nil {
		w = wrap(f)
	}
	_, werr := w.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		//lint:ignore errdrop the write failure is the one worth reporting; the temp file is best-effort cleanup
		_ = os.Remove(tmp)
		return fmt.Errorf("gtvsnap: writing %s: %w", path, werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		//lint:ignore errdrop the rename failure is the one worth reporting; the temp file is best-effort cleanup
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// fileExt is the checkpoint file suffix; CheckpointPath and
// LatestCheckpoint agree on it.
const fileExt = ".gtvsnap"

// CheckpointPath names the checkpoint taken after `rounds` training
// rounds have completed. Zero-padding keeps lexical and numeric order
// identical, so directory listings read in training order.
func CheckpointPath(dir string, rounds int) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%08d%s", rounds, fileExt))
}

// LatestCheckpoint scans dir for checkpoint files and returns the one
// with the highest round count. ok is false when dir holds none (a fresh
// -resume run starts from scratch); an unreadable directory is an error.
func LatestCheckpoint(dir string) (path string, rounds int, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "", 0, false, nil
		}
		return "", 0, false, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var r int
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%d"+fileExt, &r); n == 1 {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", 0, false, nil
	}
	sort.Strings(names)
	last := names[len(names)-1]
	fmt.Sscanf(last, "checkpoint-%d"+fileExt, &rounds)
	return filepath.Join(dir, last), rounds, true, nil
}
