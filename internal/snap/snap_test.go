package snap

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// --- golden fixtures ---

// goldenSnapshot builds the pinned fixture image exercising every codec
// primitive, including a repeated section id (the per-client blob shape)
// and a nil matrix (an untouched Adam moment). Regenerate with
//
//	GTV_UPDATE_SNAP_FIXTURES=1 go test ./internal/snap -run TestGoldenSnapshot
//
// and treat any diff in testdata as an incompatible format change that
// must bump Version.
func goldenSnapshot() []byte {
	b := NewBuilder(KindCentralized)
	b.Section(1, func(e *Enc) {
		e.U8(7)
		e.U32(0xdeadbeef)
		e.I64(-42)
		e.F64(3.5)
		e.Bool(true)
		e.Str("gtvsnap")
		e.Bytes([]byte{1, 2, 3})
	})
	b.Section(2, func(e *Enc) {
		e.Ints([]int{-1, 0, 7})
		e.U64s([]uint64{1, 1 << 40})
		e.Matrix(tensor.FromRows([][]float64{{1, -2.5}, {0.125, 4096}}))
		e.Matrix(nil)
	})
	b.Section(2, func(e *Enc) {
		e.Str("repeated id")
	})
	return b.Bytes()
}

const goldenFixture = "golden.gtvsnap"

func TestGoldenSnapshot(t *testing.T) {
	path := filepath.Join("testdata", goldenFixture)
	want := goldenSnapshot()
	if os.Getenv("GTV_UPDATE_SNAP_FIXTURES") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatalf("writing fixture: %v", err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture %s (regenerate with GTV_UPDATE_SNAP_FIXTURES=1): %v", goldenFixture, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("encoder output diverged from the pinned fixture bytes — this is a snapshot format break; bump snap.Version")
	}
}

// TestGoldenSnapshotDecode decodes the pinned bytes back into values,
// holding the decoder to the same contract as the encoder.
func TestGoldenSnapshotDecode(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", goldenFixture))
	if err != nil {
		t.Fatalf("reading fixture (regenerate with GTV_UPDATE_SNAP_FIXTURES=1): %v", err)
	}
	s, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if s.Kind != KindCentralized {
		t.Fatalf("kind = %d, want %d", s.Kind, KindCentralized)
	}
	if len(s.Sections) != 3 {
		t.Fatalf("decoded %d sections, want 3", len(s.Sections))
	}

	d, err := s.Need(1, "scalars")
	if err != nil {
		t.Fatalf("Need(1): %v", err)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d, want 7", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x, want 0xdeadbeef", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d, want -42", got)
	}
	if got := d.F64(); got != 3.5 { //lint:ignore floateq the fixture pins exact bits
		t.Errorf("F64 = %v, want 3.5", got)
	}
	if !d.Bool() {
		t.Error("Bool = false, want true")
	}
	if got := d.Str(); got != "gtvsnap" {
		t.Errorf("Str = %q, want gtvsnap", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v, want [1 2 3]", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish(scalars): %v", err)
	}

	d, err = s.Need(2, "slices")
	if err != nil {
		t.Fatalf("Need(2): %v", err)
	}
	ints := d.Ints()
	if len(ints) != 3 || ints[0] != -1 || ints[1] != 0 || ints[2] != 7 {
		t.Errorf("Ints = %v, want [-1 0 7]", ints)
	}
	u64s := d.U64s()
	if len(u64s) != 2 || u64s[0] != 1 || u64s[1] != 1<<40 {
		t.Errorf("U64s = %v, want [1 1<<40]", u64s)
	}
	m := d.Matrix()
	if m == nil {
		t.Fatal("Matrix = nil, want 2x2")
	}
	defer m.Release()
	wantM := [][]float64{{1, -2.5}, {0.125, 4096}}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("matrix shape %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	for i := range wantM {
		for j := range wantM[i] {
			if m.At(i, j) != wantM[i][j] { //lint:ignore floateq the fixture pins exact bits
				t.Errorf("matrix(%d,%d) = %v, want %v", i, j, m.At(i, j), wantM[i][j])
			}
		}
	}
	if nilM := d.Matrix(); nilM != nil {
		t.Error("nil matrix did not round-trip as nil")
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish(slices): %v", err)
	}

	reps := s.All(2)
	if len(reps) != 2 {
		t.Fatalf("All(2) returned %d payloads, want 2", len(reps))
	}
	if got := NewDec(reps[1]).Str(); got != "repeated id" {
		t.Errorf("repeated section Str = %q", got)
	}
}

// --- framing defenses ---

// sectionBoundaries returns every prefix length at which a snapshot image
// is self-consistent: the header boundary and the end of each section.
func sectionBoundaries(t *testing.T, data []byte) map[int]bool {
	t.Helper()
	ok := map[int]bool{headerLen: true}
	off := headerLen
	for off < len(data) {
		n := int(getU64(data[off+1 : off+9]))
		off += sectionOverhead + n
		ok[off] = true
	}
	if off != len(data) {
		t.Fatalf("section walk ended at %d of %d", off, len(data))
	}
	return ok
}

// TestDecodeTruncationEveryCutPoint truncates the golden image at every
// byte offset. Cuts that land exactly on a section boundary yield a valid
// shorter file (restore paths then reject it for missing sections); every
// other cut must fail decoding outright, never panic, and never
// misattribute bytes to the wrong section.
func TestDecodeTruncationEveryCutPoint(t *testing.T) {
	data := goldenSnapshot()
	boundary := sectionBoundaries(t, data)
	for i := 0; i < len(data); i++ {
		s, err := Decode(data[:i])
		if boundary[i] {
			if err != nil {
				t.Fatalf("cut at section boundary %d: %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("cut at %d of %d decoded %d sections without error", i, len(data), len(s.Sections))
		}
	}
}

// TestDecodeTrailingBytes rejects any bytes after the last full section.
func TestDecodeTrailingBytes(t *testing.T) {
	data := append(goldenSnapshot(), 0xff)
	if _, err := Decode(data); err == nil {
		t.Fatal("Decode accepted a trailing byte after the last section")
	}
}

// TestDecodeCRCCorruption flips one payload bit and requires the error to
// name the corrupted section.
func TestDecodeCRCCorruption(t *testing.T) {
	data := goldenSnapshot()
	corrupt := append([]byte(nil), data...)
	corrupt[headerLen+sectionOverhead] ^= 0x01 // first payload byte of section 1
	_, err := Decode(corrupt)
	if err == nil {
		t.Fatal("Decode accepted a corrupted payload")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("section 1 CRC")) {
		t.Fatalf("CRC error does not name the corrupted section: %v", err)
	}
}

// TestDecodeHeaderDefenses covers bad magic, unknown version, and unknown
// kind.
func TestDecodeHeaderDefenses(t *testing.T) {
	good := goldenSnapshot()

	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted bad magic")
	}

	bad = append([]byte(nil), good...)
	bad[6] = Version + 1
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted an unknown version")
	}

	bad = append([]byte(nil), good...)
	bad[7] = 0
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted an unknown kind")
	}
}

// TestDecLengthBounds pins the allocation defense: a length prefix larger
// than the bytes behind it fails instead of allocating.
func TestDecLengthBounds(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0x7f} // u32 length ~2^31 with no data behind it
	if NewDec(huge).Ints() != nil {
		t.Error("Ints accepted a length prefix exceeding the section")
	}
	if NewDec(huge).U64s() != nil {
		t.Error("U64s accepted a length prefix exceeding the section")
	}
	if NewDec(huge).Bytes() != nil {
		t.Error("Bytes accepted a length prefix exceeding the section")
	}
	// Matrix: present tag, huge shape, no elements.
	e := &Enc{}
	e.U8(1)
	e.U32(1 << 20)
	e.U32(1 << 20)
	if NewDec(e.buf).Matrix() != nil {
		t.Error("Matrix accepted a shape exceeding the section")
	}
}

// --- checkpoint files ---

func TestWriteReadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := CheckpointPath(dir, 3)
	data := goldenSnapshot()
	if err := WriteFileAtomic(path, data); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	s, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(s.Sections) != 3 {
		t.Fatalf("round-tripped %d sections, want 3", len(s.Sections))
	}
}

// failAfter passes through n bytes then fails, simulating a disk filling
// up (or a crash) mid-checkpoint.
type failAfter struct {
	w io.Writer
	n int
}

var errDiskFull = errors.New("injected write failure")

func (f *failAfter) Write(p []byte) (int, error) {
	if len(p) <= f.n {
		f.n -= len(p)
		return f.w.Write(p)
	}
	wrote, _ := f.w.Write(p[:f.n])
	f.n = 0
	return wrote, errDiskFull
}

// TestCrashSafetyPreservesPreviousCheckpoint is the atomicity contract: a
// write failure partway through replacing a checkpoint leaves the previous
// file byte-identical and decodable, and leaves no temp litter behind.
func TestCrashSafetyPreservesPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := CheckpointPath(dir, 1)
	previous := goldenSnapshot()
	if err := WriteFileAtomic(path, previous); err != nil {
		t.Fatalf("writing previous checkpoint: %v", err)
	}

	next := NewBuilder(KindServer)
	next.Section(1, func(e *Enc) { e.Str("the doomed successor") })
	err := writeFileAtomic(path, next.Bytes(), func(w io.Writer) io.Writer {
		return &failAfter{w: w, n: 5}
	})
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("writeFileAtomic error = %v, want the injected failure", err)
	}

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after failed write: %v", err)
	}
	if !bytes.Equal(got, previous) {
		t.Fatal("previous checkpoint bytes changed after a failed write")
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("previous checkpoint no longer decodes: %v", err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, ".gtvsnap-*.tmp"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(tmps) != 0 {
		t.Fatalf("failed write left temp files behind: %v", tmps)
	}
}

// TestWriteFileAtomicReplaces overwrites an existing checkpoint in place.
func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := CheckpointPath(dir, 1)
	if err := WriteFileAtomic(path, goldenSnapshot()); err != nil {
		t.Fatalf("first write: %v", err)
	}
	b := NewBuilder(KindClient)
	b.Section(1, func(e *Enc) { e.I64(99) })
	if err := WriteFileAtomic(path, b.Bytes()); err != nil {
		t.Fatalf("second write: %v", err)
	}
	s, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if s.Kind != KindClient {
		t.Fatalf("kind after replace = %d, want %d", s.Kind, KindClient)
	}
}

func TestLatestCheckpoint(t *testing.T) {
	dir := t.TempDir()

	// Missing directory and empty directory both mean "start fresh".
	if _, _, ok, err := LatestCheckpoint(filepath.Join(dir, "absent")); err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v, want ok=false err=nil", ok, err)
	}
	if _, _, ok, err := LatestCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want ok=false err=nil", ok, err)
	}

	// Zero-padding keeps numeric and lexical order aligned: round 10 must
	// beat round 2.
	for _, r := range []int{2, 10} {
		if err := WriteFileAtomic(CheckpointPath(dir, r), goldenSnapshot()); err != nil {
			t.Fatalf("writing round %d: %v", r, err)
		}
	}
	// Stray files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatalf("writing stray file: %v", err)
	}

	path, rounds, ok, err := LatestCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("LatestCheckpoint: ok=%v err=%v", ok, err)
	}
	if rounds != 10 {
		t.Fatalf("rounds = %d, want 10", rounds)
	}
	if path != CheckpointPath(dir, 10) {
		t.Fatalf("path = %s, want %s", path, CheckpointPath(dir, 10))
	}
}

// --- fuzzing ---

// FuzzSnapshotDecode feeds arbitrary bytes through Decode and, when a file
// parses, through every Dec primitive. Nothing here may panic, and no
// length field may drive allocation beyond the input size.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(goldenSnapshot())
	f.Add([]byte{})
	f.Add([]byte("GTVSNP"))
	f.Add(append([]byte("GTVSNP"), Version, KindServer))
	trunc := goldenSnapshot()
	f.Add(trunc[:len(trunc)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		total := 0
		for _, sec := range s.Sections {
			total += len(sec.Payload)
			d := NewDec(sec.Payload)
			d.U8()
			d.U32()
			d.I64()
			d.F64()
			d.Bool()
			d.Str()
			d.Bytes()
			d.Ints()
			d.U64s()
			if m := d.Matrix(); m != nil {
				m.Release()
			}
			//lint:ignore errdrop the fuzz target only asserts the decoder never panics
			_ = d.Finish()
		}
		if total+headerLen > len(data) {
			t.Fatalf("decoded payloads total %d bytes from a %d-byte input", total, len(data))
		}
	})
}
