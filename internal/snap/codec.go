package snap

// Section-payload primitives, deliberately the same shapes as the gtvwire
// codec (internal/vfl/wirecodec.go): little-endian integers, a sticky
// decode error so call sites read as straight-line field lists, explicit
// remaining-bytes bounds before every allocation, and matrices streamed
// from tensor.Dense.Data() on encode and into pooled buffers on decode.
// Snapshots always store float64 elements — a checkpoint exists to resume
// byte-identically, so the lossy float32 wire encoding has no place here.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

func putU64(dst []byte, v uint64) { binary.LittleEndian.PutUint64(dst, v) }
func getU64(src []byte) uint64    { return binary.LittleEndian.Uint64(src) }
func getU32(src []byte) uint32    { return binary.LittleEndian.Uint32(src) }

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// Enc appends one section payload to the Builder's buffer.
type Enc struct{ buf []byte }

func (e *Enc) U8(v byte) { e.buf = append(e.buf, v) }
func (e *Enc) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}
func (e *Enc) I64(v int64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
}
func (e *Enc) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *Enc) Ints(v []int) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(int64(x))
	}
}

func (e *Enc) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, x)
	}
}

// Matrix appends m's shape and float64 elements straight from the backing
// storage; a nil matrix round-trips as nil (Adam moments that have not
// been created yet).
func (e *Enc) Matrix(m *tensor.Dense) {
	if m == nil {
		e.U8(0)
		return
	}
	e.U8(1)
	e.U32(uint32(m.Rows()))
	e.U32(uint32(m.Cols()))
	data := m.Data()
	e.buf = growBuf(e.buf, 8*len(data))
	for _, v := range data {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	}
}

// growBuf ensures room for n more bytes so element-append loops never
// re-grow mid-matrix.
func growBuf(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b
	}
	nb := make([]byte, len(b), len(b)+n)
	copy(nb, b)
	return nb
}

// Dec walks one section payload. The first decode error sticks; every
// subsequent read returns zero values, so callers check Finish once.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec starts decoding one section payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("gtvsnap: "+format, args...)
	}
}

// take returns the next n payload bytes, or nil after marking the decoder
// failed when fewer remain.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("truncated section: need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Err peeks at the sticky error without the trailing-bytes check, so
// multi-stage decoders can stop early on a poisoned stream.
func (d *Dec) Err() error { return d.err }

// Remaining reports how many undecoded bytes are left, the bound callers
// use to reject length prefixes larger than the data behind them.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Failf marks the decoder failed with a formatted message (first failure
// sticks). Decoder helpers outside this package use it for their own
// bounds checks.
func (d *Dec) Failf(format string, args ...any) { d.fail(format, args...) }

// Finish reports the sticky error, also flagging unconsumed trailing
// bytes (a symptom of an encoder/decoder mismatch, i.e. a missed version
// bump).
func (d *Dec) Finish() error {
	if d.err == nil && d.off != len(d.buf) {
		d.fail("%d trailing section bytes", len(d.buf)-d.off)
	}
	return d.err
}

func (d *Dec) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Dec) I64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (d *Dec) F64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *Dec) Bool() bool { return d.U8() != 0 }

func (d *Dec) Str() string {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes returns a copy of a length-prefixed byte string (a copy, because
// section payloads alias the decoded file image, which checkpoint loaders
// discard after restoring).
func (d *Dec) Bytes() []byte {
	n := d.U32()
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *Dec) Ints() []int {
	n := int(d.U32())
	if d.take(0) == nil || n > (len(d.buf)-d.off)/8 {
		d.fail("int slice length %d exceeds section", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.I64())
	}
	return out
}

func (d *Dec) U64s() []uint64 {
	n := int(d.U32())
	if d.take(0) == nil || n > (len(d.buf)-d.off)/8 {
		d.fail("uint64 slice length %d exceeds section", n)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		b := d.take(8)
		if b == nil {
			return nil
		}
		out[i] = binary.LittleEndian.Uint64(b)
	}
	return out
}

// Matrix decodes a matrix into a buffer drawn from the tensor free list
// (every element is overwritten). Ownership passes to the caller; restore
// paths copy into live parameter tensors and Release the decoded buffer.
func (d *Dec) Matrix() *tensor.Dense {
	tag := d.U8()
	if d.err != nil || tag == 0 {
		return nil
	}
	rows := int(d.U32())
	cols := int(d.U32())
	if d.err != nil {
		return nil
	}
	// Bounding rows by remaining/(cols*8) both rejects shapes larger than
	// the section and keeps rows*cols from overflowing below.
	if rows < 0 || cols < 0 || (cols != 0 && rows > (len(d.buf)-d.off)/(cols*8)) {
		d.fail("matrix shape %dx%d exceeds section", rows, cols)
		return nil
	}
	raw := d.take(rows * cols * 8)
	if raw == nil {
		return nil
	}
	out := tensor.NewPooledUninit(rows, cols)
	data := out.Data()
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}
