package core

import (
	"math"
	"os"
	"testing"

	"repro/internal/datasets"
	"repro/internal/encoding"
)

// synthBits flattens a synthesized table into the exact float64 bit
// patterns so runs can be compared for byte identity, not tolerance.
func synthBits(t *testing.T, synth *encoding.Table) []uint64 {
	t.Helper()
	bits := make([]uint64, 0, synth.Rows()*synth.Cols())
	for i := 0; i < synth.Rows(); i++ {
		for _, v := range synth.Data.RawRow(i) {
			bits = append(bits, math.Float64bits(v))
		}
	}
	return bits
}

func sameBits(t *testing.T, label string, a, b []uint64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: synthesized %d values, want %d", label, len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: synthesized value %d differs between runs (bit patterns %x vs %x)", label, i, a[i], b[i])
		}
	}
}

func sameCheckpoint(t *testing.T, label string, a, b []byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: checkpoint sizes differ (%d vs %d bytes)", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: checkpoint byte %d differs between runs", label, i)
		}
	}
}

// TestDataPlaneByteIdentityCentralized is the streamed-equals-resident
// property for the centralized trainer: with the same seed, training from
// the in-memory encoded matrix, from a freshly encoded gtvcol file, and
// from a cached gtvcol file (fit/transform skipped entirely) must produce
// byte-identical model checkpoints and byte-identical synthetic output.
func TestDataPlaneByteIdentityCentralized(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	d, err := datasets.Generate("loan", datasets.Config{Rows: 300, Seed: 11})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	run := func(dataDir string) ([]uint64, []byte) {
		opts := DefaultOptions()
		opts.Rounds = 4
		opts.BlockDim = 32
		opts.NoiseDim = 16
		opts.BatchSize = 32
		opts.DataDir = dataDir
		opts.BlockCacheMB = 1
		c, err := NewCentralized(d.Table, opts)
		if err != nil {
			t.Fatalf("NewCentralized(dataDir=%q): %v", dataDir, err)
		}
		defer func() {
			if err := c.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		if err := c.Train(nil); err != nil {
			t.Fatalf("Train(dataDir=%q): %v", dataDir, err)
		}
		ckptDir := t.TempDir()
		path, err := c.SaveCheckpoint(ckptDir)
		if err != nil {
			t.Fatalf("SaveCheckpoint: %v", err)
		}
		ckpt, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading checkpoint: %v", err)
		}
		synth, err := c.Synthesize(40)
		if err != nil {
			t.Fatalf("Synthesize(dataDir=%q): %v", dataDir, err)
		}
		return synthBits(t, synth), ckpt
	}

	memBits, memCkpt := run("")
	dir := t.TempDir()
	freshBits, freshCkpt := run(dir) // encodes train.enc.gtvcol
	if _, err := os.Stat(dir + "/central.enc.gtvcol"); err != nil {
		t.Fatalf("expected encoded store on disk: %v", err)
	}
	cachedBits, cachedCkpt := run(dir) // reuses it via fingerprint

	sameBits(t, "in-memory vs streamed", memBits, freshBits)
	sameBits(t, "streamed vs cached-rerun", freshBits, cachedBits)
	sameCheckpoint(t, "in-memory vs streamed", memCkpt, freshCkpt)
	sameCheckpoint(t, "streamed vs cached-rerun", freshCkpt, cachedCkpt)
}

// TestDataPlaneByteIdentityFederated is the same property for GTV proper:
// every client draws batches through its gtvcol store and the federated
// trajectory must not move by a single bit.
func TestDataPlaneByteIdentityFederated(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	d, err := datasets.Generate("loan", datasets.Config{Rows: 240, Seed: 12})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	assignment, err := EvenAssignment(d.Table.Cols(), 2)
	if err != nil {
		t.Fatalf("EvenAssignment: %v", err)
	}
	run := func(dataDir string) ([]uint64, []byte) {
		opts := DefaultOptions()
		opts.Rounds = 3
		opts.BlockDim = 32
		opts.NoiseDim = 16
		opts.BatchSize = 32
		opts.DataDir = dataDir
		opts.BlockCacheMB = 1
		g, err := NewFromAssignment(d.Table, assignment, 2, opts)
		if err != nil {
			t.Fatalf("NewFromAssignment(dataDir=%q): %v", dataDir, err)
		}
		if err := g.Train(nil); err != nil {
			t.Fatalf("Train(dataDir=%q): %v", dataDir, err)
		}
		ckptDir := t.TempDir()
		path, err := g.Checkpoint(ckptDir)
		if err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		ckpt, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading checkpoint: %v", err)
		}
		synth, err := g.Synthesize(30)
		if err != nil {
			t.Fatalf("Synthesize(dataDir=%q): %v", dataDir, err)
		}
		bits := synthBits(t, synth)
		if err := g.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return bits, ckpt
	}

	memBits, memCkpt := run("")
	dir := t.TempDir()
	freshBits, freshCkpt := run(dir)
	if _, err := os.Stat(dir + "/client-0.enc.gtvcol"); err != nil {
		t.Fatalf("expected client-0 encoded store on disk: %v", err)
	}
	cachedBits, cachedCkpt := run(dir)

	sameBits(t, "in-memory vs streamed", memBits, freshBits)
	sameBits(t, "streamed vs cached-rerun", freshBits, cachedBits)
	sameCheckpoint(t, "in-memory vs streamed", memCkpt, freshCkpt)
	sameCheckpoint(t, "streamed vs cached-rerun", freshCkpt, cachedCkpt)
}
