package core

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/stats"
	"repro/internal/vfl"
)

func TestEvenAssignment(t *testing.T) {
	tests := []struct {
		cols, clients int
		want          []int
	}{
		{4, 2, []int{0, 0, 1, 1}},
		{5, 2, []int{0, 0, 0, 1, 1}},
		{7, 3, []int{0, 0, 0, 1, 1, 2, 2}},
		{3, 3, []int{0, 1, 2}},
	}
	for _, tc := range tests {
		got, err := EvenAssignment(tc.cols, tc.clients)
		if err != nil {
			t.Fatalf("EvenAssignment(%d,%d): %v", tc.cols, tc.clients, err)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("EvenAssignment(%d,%d) = %v want %v", tc.cols, tc.clients, got, tc.want)
			}
		}
	}
}

func TestEvenAssignmentErrors(t *testing.T) {
	if _, err := EvenAssignment(2, 3); err == nil {
		t.Fatal("expected error: more clients than columns")
	}
	if _, err := EvenAssignment(2, 0); err == nil {
		t.Fatal("expected error: zero clients")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultOptions()); err == nil {
		t.Fatal("expected error for no tables")
	}
}

func TestGTVEndToEndOnDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	d, err := datasets.Generate("loan", datasets.Config{Rows: 400, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	assignment, err := EvenAssignment(d.Table.Cols(), 2)
	if err != nil {
		t.Fatalf("EvenAssignment: %v", err)
	}
	opts := DefaultOptions()
	opts.Rounds = 25
	opts.BlockDim = 48
	opts.NoiseDim = 16
	g, err := NewFromAssignment(d.Table, assignment, 2, opts)
	if err != nil {
		t.Fatalf("NewFromAssignment: %v", err)
	}
	if got := len(g.Ratios()); got != 2 {
		t.Fatalf("ratios length %d", got)
	}
	if err := g.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	joined, parts, err := g.SynthesizeParts(200)
	if err != nil {
		t.Fatalf("SynthesizeParts: %v", err)
	}
	if joined.Rows() != 200 || joined.Cols() != d.Table.Cols() {
		t.Fatalf("synthetic shape %dx%d want 200x%d", joined.Rows(), joined.Cols(), d.Table.Cols())
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	if joined.Data.HasNaN() {
		t.Fatal("synthetic data contains NaN")
	}
	// Synthetic data must be schema-valid and statistically comparable.
	clientTables := g.ClientTables()
	avg, err := stats.AvgClientDiff(clientTables, parts)
	if err != nil {
		t.Fatalf("AvgClientDiff on synthetic parts: %v", err)
	}
	if avg < 0 {
		t.Fatalf("AvgClientDiff = %v", avg)
	}
}

func TestCentralizedWrapper(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	d, err := datasets.Generate("loan", datasets.Config{Rows: 200, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	opts := DefaultOptions()
	opts.Rounds = 5
	opts.BlockDim = 32
	opts.NoiseDim = 16
	c, err := NewCentralized(d.Table, opts)
	if err != nil {
		t.Fatalf("NewCentralized: %v", err)
	}
	if err := c.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	synth, err := c.Synthesize(50)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if synth.Rows() != 50 {
		t.Fatalf("rows = %d", synth.Rows())
	}
}

func TestPaperOptionsShape(t *testing.T) {
	o := PaperOptions()
	if o.BlockDim != 256 || o.BatchSize != 500 || o.NoiseDim != 128 || o.DiscSteps != 5 {
		t.Fatalf("paper options = %+v", o)
	}
	if o.Plan != (vfl.Plan{DiscServer: 2, GenClient: 2}) {
		t.Fatalf("paper plan = %+v", o.Plan)
	}
}

func TestGTVDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	d, err := datasets.Generate("loan", datasets.Config{Rows: 200, Seed: 9})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	assignment, err := EvenAssignment(d.Table.Cols(), 2)
	if err != nil {
		t.Fatalf("EvenAssignment: %v", err)
	}
	train := func() [][]float64 {
		opts := DefaultOptions()
		opts.Rounds = 4
		opts.BlockDim = 32
		opts.NoiseDim = 16
		opts.BatchSize = 32
		g, err := NewFromAssignment(d.Table, assignment, 2, opts)
		if err != nil {
			t.Fatalf("NewFromAssignment: %v", err)
		}
		if err := g.Train(nil); err != nil {
			t.Fatalf("Train: %v", err)
		}
		synth, err := g.Synthesize(30)
		if err != nil {
			t.Fatalf("Synthesize: %v", err)
		}
		rows := make([][]float64, synth.Rows())
		for i := range rows {
			rows[i] = append([]float64(nil), synth.Data.RawRow(i)...)
		}
		return rows
	}
	a := train()
	b := train()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("row %d col %d differs between identically-seeded runs", i, j)
			}
		}
	}
}

func TestGTVCommStatsExposed(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	d, err := datasets.Generate("loan", datasets.Config{Rows: 150, Seed: 10})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	assignment, err := EvenAssignment(d.Table.Cols(), 2)
	if err != nil {
		t.Fatalf("EvenAssignment: %v", err)
	}
	opts := DefaultOptions()
	opts.Rounds = 1
	opts.BlockDim = 32
	opts.NoiseDim = 16
	opts.BatchSize = 32
	g, err := NewFromAssignment(d.Table, assignment, 2, opts)
	if err != nil {
		t.Fatalf("NewFromAssignment: %v", err)
	}
	if _, _, err := g.TrainRound(); err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	if g.CommStats().Total() == 0 {
		t.Fatal("comm stats should be nonzero after a round")
	}
}

func TestSynthesizeCondition(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	d, err := datasets.Generate("loan", datasets.Config{Rows: 300, Seed: 11})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	assignment, err := EvenAssignment(d.Table.Cols(), 2)
	if err != nil {
		t.Fatalf("EvenAssignment: %v", err)
	}
	opts := DefaultOptions()
	opts.Rounds = 350
	opts.BlockDim = 48
	opts.NoiseDim = 16
	g, err := NewFromAssignment(d.Table, assignment, 2, opts)
	if err != nil {
		t.Fatalf("NewFromAssignment: %v", err)
	}
	if err := g.Train(nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	// The target column lives on client 1 (second half of the columns).
	synth, err := g.SynthesizeCondition(120, 1, "target", "class_1")
	if err != nil {
		t.Fatalf("SynthesizeCondition: %v", err)
	}
	if synth.Rows() != 120 {
		t.Fatalf("rows = %d", synth.Rows())
	}
	// The conditioned category is rare (~10%) unconditionally; conditioning
	// must raise its share substantially.
	targetCol := synth.ColumnByName("target")
	var count int
	for i := 0; i < synth.Rows(); i++ {
		if int(synth.Data.At(i, targetCol)) == 1 {
			count++
		}
	}
	// The class's unconditional share is ~10%; conditioning must raise it
	// clearly (full saturation needs paper-scale training).
	frac := float64(count) / float64(synth.Rows())
	if frac < 0.3 {
		t.Fatalf("conditioned class share = %v, conditioning ineffective", frac)
	}
	// Error paths.
	if _, err := g.SynthesizeCondition(10, 5, "target", "class_1"); err == nil {
		t.Fatal("expected client range error")
	}
	if _, err := g.SynthesizeCondition(10, 1, "nope", "class_1"); err == nil {
		t.Fatal("expected unknown column error")
	}
	if _, err := g.SynthesizeCondition(10, 1, "target", "nope"); err == nil {
		t.Fatal("expected unknown category error")
	}
}
