// Package core is the top-level GTV API: it wires vertically-partitioned
// tabular data, the partition plan and the training hyper-parameters into a
// ready-to-train system, and exposes synthesis of the joint synthetic table.
//
// A GTV system consists of one trusted-third-party server and N clients,
// each owning a disjoint set of columns for the same (aligned) rows. The
// generator and discriminator are split into top models (server) and bottom
// models (clients) according to a Plan; training follows Algorithm 1 of the
// paper, with conditional vectors accommodated by training-with-shuffling.
//
// Typical use:
//
//	tables, _ := table.VerticalSplit(assignment, 2)
//	g, _ := core.New(tables, core.DefaultOptions())
//	_ = g.Train(nil)
//	synthetic, _ := g.Synthesize(table.Rows())
//
// The centralized CTGAN baseline from the paper's evaluation is available
// as core.NewCentralized.
package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"

	"repro/internal/encoding"
	"repro/internal/gan"
	"repro/internal/vfl"
)

// Options configures a GTV system. The zero value is not usable; start
// from DefaultOptions.
type Options struct {
	// Plan is the neural-network partition (D^{n3}_{n4} G^{n1}_{n2}).
	Plan vfl.Plan
	// Rounds, DiscSteps and BatchSize control the training loop.
	Rounds, DiscSteps, BatchSize int
	// NoiseDim, BlockDim and GenBlockDim size the networks. GenBlockDim=0
	// means BlockDim; the paper's "enlarged generator" sets it to
	// 3*BlockDim.
	NoiseDim, BlockDim, GenBlockDim int
	// LR is the Adam learning rate for every party.
	LR float64
	// Pac is the PacGAN packing degree at the critic (CTGAN uses 10);
	// BatchSize must be divisible by it. 0 means no packing.
	Pac int
	// DPLogitNoise optionally adds Gaussian noise to intermediate logits
	// received by the server (local-DP style; the paper discusses and
	// rejects this for its accuracy cost — see §3.3).
	DPLogitNoise float64
	// Seed drives model initialization and training randomness.
	Seed int64
	// ShuffleSecret is the secret the clients share for
	// training-with-shuffling. It must be withheld from the server; in this
	// in-process construction that is a convention enforced by the API
	// surface (the server type has no access to it).
	ShuffleSecret int64
	// FaithfulRealPass selects the paper's index-privacy mode (see
	// vfl.Config.FaithfulRealPass).
	FaithfulRealPass bool
	// Parallelism bounds how many clients the server drives concurrently
	// per protocol step: 0 means all, 1 means sequential (see
	// vfl.Config.Parallelism). Training results are bit-identical across
	// settings.
	Parallelism int
	// Transport selects how the server reaches the clients: "local" (or
	// empty) drives them in-process; "gob" and "binary" serve each client
	// on a TCP loopback listener (net/rpc+gob vs the gtvwire binary frame
	// protocol, see DESIGN.md "Wire protocol") and drive it through the
	// corresponding network proxy — byte-for-byte the traffic a
	// multi-machine deployment exchanges. Training results are
	// bit-identical across transports (float32 mode aside). Call Close to
	// tear the loopback listeners down.
	Transport string
	// WireFloat32 sends activation and gradient matrices as float32 on
	// the binary transport, halving boundary traffic at the cost of exact
	// cross-transport reproducibility. Only valid with Transport
	// "binary".
	WireFloat32 bool
	// WireTopK, when in (0, 1), keeps only this fraction of each boundary
	// gradient the server sends, with error feedback carrying the dropped
	// mass into later rounds (see vfl.Config.GradTopK). Sparsified
	// gradients travel as index lists on the binary transport; the setting
	// itself is transport independent, so a local run with the same
	// fraction follows the identical trajectory. Lossy; off by default.
	WireTopK float64
	// WireDelta ships checkpoint fetches from remote clients as deltas
	// against the previous fetch instead of full blobs (see
	// vfl.(*WireClient).SetDelta). Lossless. Only valid with Transport
	// "binary".
	WireDelta bool
	// CallPolicy hardens the network transports' calls (deadline +
	// transient-error retry); ignored for the local transport. The zero
	// value imposes nothing.
	CallPolicy vfl.CallPolicy
	// CheckpointDir, when set, makes Train write an atomic gtvsnap
	// checkpoint of the whole federation (server state plus every client's
	// bottom-model blob) into this directory every CheckpointEvery rounds
	// and after the final round. See DESIGN.md "Checkpoint format".
	CheckpointDir string
	// CheckpointEvery is the round interval between checkpoints; 0 means
	// every round.
	CheckpointEvery int
	// Resume makes New restore the newest checkpoint in CheckpointDir (if
	// any) before training, continuing the original run byte-identically.
	Resume bool
	// DataDir, when set, moves each party's encoded training matrix into
	// a gtvcol columnar file under this directory (<party>.enc.gtvcol);
	// batches are gathered through a bounded block cache, so resident
	// memory stays flat regardless of dataset size, and a rerun with the
	// same data, seed and GMM config reuses the file without re-fitting or
	// re-encoding. Training is bit-identical with or without a DataDir.
	DataDir string
	// BlockCacheMB bounds each party's decoded-block cache in MiB; 0
	// selects the coldata default (256 MiB). Only meaningful with DataDir.
	BlockCacheMB int
}

// storage builds the per-party gtvcol storage config; name is the file
// stem ("central", "client-0", ...).
func (o Options) storage(name string) encoding.Storage {
	return encoding.Storage{
		Dir:        o.DataDir,
		Name:       name,
		CacheBytes: int64(o.BlockCacheMB) << 20,
	}
}

// DefaultOptions returns a laptop-scale configuration with the paper's
// preferred partition D2_0 G2_0 (discriminator on the server, generator on
// the clients — the scalable choice for evenly distributed columns).
func DefaultOptions() Options {
	return Options{
		Plan:          vfl.Plan{DiscServer: 2, DiscClient: 0, GenServer: 0, GenClient: 2},
		Rounds:        400,
		DiscSteps:     3,
		BatchSize:     64,
		NoiseDim:      32,
		BlockDim:      64,
		LR:            5e-4,
		Seed:          1,
		ShuffleSecret: 0x67747673, // any value shared by the clients
	}
}

// PaperOptions returns the paper-scale configuration: block width 256,
// CTGAN's learning rate and five critic steps per round. It is roughly two
// orders of magnitude more compute than DefaultOptions.
func PaperOptions() Options {
	o := DefaultOptions()
	o.Rounds = 3000
	o.DiscSteps = 5
	o.BatchSize = 500
	o.NoiseDim = 128
	o.BlockDim = 256
	o.LR = 2e-4
	o.Pac = 10
	return o
}

func (o Options) vflConfig() vfl.Config {
	return vfl.Config{
		Plan:             o.Plan,
		Rounds:           o.Rounds,
		DiscSteps:        o.DiscSteps,
		BatchSize:        o.BatchSize,
		NoiseDim:         o.NoiseDim,
		BlockDim:         o.BlockDim,
		GenBlockDim:      o.GenBlockDim,
		LR:               o.LR,
		Pac:              o.Pac,
		DPLogitNoise:     o.DPLogitNoise,
		Seed:             o.Seed,
		FaithfulRealPass: o.FaithfulRealPass,
		Parallelism:      o.Parallelism,
		GradTopK:         o.WireTopK,
	}
}

// GTV is a configured vertical-federated tabular GAN.
type GTV struct {
	server  *vfl.Server
	clients []*vfl.LocalClient

	ckptDir   string
	ckptEvery int

	// Loopback plumbing for the network transports; empty for "local".
	listeners []net.Listener
	proxies   []io.Closer
}

// New builds a GTV system from pre-partitioned client tables (all with the
// same number of aligned rows). With a network Transport in the options,
// each client is served on its own TCP loopback listener and the server
// drives the resulting proxies; call Close when done.
func New(clientTables []*encoding.Table, opts Options) (*GTV, error) {
	if len(clientTables) == 0 {
		return nil, errors.New("core: no client tables")
	}
	coord := vfl.NewShuffleCoordinator(opts.ShuffleSecret)
	clients := make([]*vfl.LocalClient, len(clientTables))
	ifaces := make([]vfl.Client, len(clientTables))
	for i, t := range clientTables {
		c, err := vfl.NewLocalClientStored(t, coord, opts.Seed+int64(i)*1000,
			opts.storage(fmt.Sprintf("client-%d", i)))
		if err != nil {
			return nil, fmt.Errorf("core: client %d: %w", i, err)
		}
		clients[i] = c
		ifaces[i] = c
	}
	g := &GTV{clients: clients}
	if err := g.connectTransport(ifaces, opts); err != nil {
		return nil, err
	}
	server, err := vfl.NewServer(ifaces, opts.vflConfig())
	if err != nil {
		_ = g.Close() //lint:ignore errdrop setup already failed, the teardown error adds nothing
		return nil, fmt.Errorf("core: server setup: %w", err)
	}
	g.server = server
	g.ckptDir = opts.CheckpointDir
	g.ckptEvery = opts.CheckpointEvery
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			_ = g.Close() //lint:ignore errdrop setup already failed, the teardown error adds nothing
			return nil, fmt.Errorf("core: checkpoint dir: %w", err)
		}
		if opts.Resume {
			// A successful restore sets the server's round counter, which
			// makes Train continue from the checkpoint instead of round
			// zero; an empty directory trains from scratch.
			if _, _, err := server.RestoreLatestCheckpoint(opts.CheckpointDir); err != nil {
				_ = g.Close() //lint:ignore errdrop setup already failed, the teardown error adds nothing
				return nil, fmt.Errorf("core: resume: %w", err)
			}
		}
	}
	return g, nil
}

// connectTransport replaces each in-process client in ifaces with a
// network proxy according to opts.Transport, serving the real client on a
// TCP loopback listener. For the local transport it is a no-op.
func (g *GTV) connectTransport(ifaces []vfl.Client, opts Options) error {
	switch opts.Transport {
	case "", "local":
		if opts.WireFloat32 {
			return errors.New("core: WireFloat32 requires the binary transport")
		}
		if opts.WireDelta {
			return errors.New("core: WireDelta requires the binary transport")
		}
		return nil
	case "gob", "binary":
	default:
		return fmt.Errorf("core: unknown transport %q (want local, gob or binary)", opts.Transport)
	}
	if opts.WireFloat32 && opts.Transport != "binary" {
		return errors.New("core: WireFloat32 requires the binary transport")
	}
	if opts.WireDelta && opts.Transport != "binary" {
		return errors.New("core: WireDelta requires the binary transport")
	}
	for i, c := range ifaces {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = g.Close() //lint:ignore errdrop setup already failed, the teardown error adds nothing
			return fmt.Errorf("core: client %d listener: %w", i, err)
		}
		g.listeners = append(g.listeners, lis)
		serve := c
		if opts.Transport == "binary" {
			//lint:ignore goroleak serve-loop daemon: it exits when Close shuts the listener, which also closes every served connection
			go func() {
				//lint:ignore errdrop the serve loop ends when Close shuts the listener
				_ = vfl.ServeClientWire(lis, serve)
			}()
			wc, err := vfl.DialWireClientPolicy("tcp", lis.Addr().String(), opts.CallPolicy)
			if err != nil {
				_ = g.Close() //lint:ignore errdrop setup already failed, the teardown error adds nothing
				return fmt.Errorf("core: dialing client %d: %w", i, err)
			}
			wc.SetFloat32(opts.WireFloat32)
			wc.SetDelta(opts.WireDelta)
			ifaces[i] = wc
			g.proxies = append(g.proxies, wc)
			continue
		}
		//lint:ignore goroleak serve-loop daemon: it exits when Close shuts the listener, which also closes every served connection
		go func() {
			//lint:ignore errdrop the serve loop ends when Close shuts the listener
			_ = vfl.ServeClient(lis, serve)
		}()
		rc, err := vfl.DialClientPolicy("tcp", lis.Addr().String(), opts.CallPolicy)
		if err != nil {
			_ = g.Close() //lint:ignore errdrop setup already failed, the teardown error adds nothing
			return fmt.Errorf("core: dialing client %d: %w", i, err)
		}
		ifaces[i] = rc
		g.proxies = append(g.proxies, rc)
	}
	return nil
}

// Close tears down the loopback transport (proxies first, then the
// listeners their serve loops accept on) and releases every client's
// encoded-data backing (file handles and block caches when a DataDir is
// configured). It is safe to call more than once.
func (g *GTV) Close() error {
	var first error
	for _, p := range g.proxies {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	g.proxies = nil
	for _, lis := range g.listeners {
		if err := lis.Close(); err != nil && first == nil {
			first = err
		}
	}
	g.listeners = nil
	for _, c := range g.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	g.clients = nil
	return first
}

// NewFromAssignment vertically splits a single logical table across
// numClients parties (assignment[j] = owning party of column j) and builds
// the GTV system.
func NewFromAssignment(table *encoding.Table, assignment []int, numClients int, opts Options) (*GTV, error) {
	parts, err := table.VerticalSplit(assignment, numClients)
	if err != nil {
		return nil, fmt.Errorf("core: splitting table: %w", err)
	}
	return New(parts, opts)
}

// EvenAssignment distributes numCols columns across numClients parties in
// contiguous runs, preserving column order (the paper's neural-network
// partition experiment setup). Leftover columns go to the earliest parties.
func EvenAssignment(numCols, numClients int) ([]int, error) {
	if numClients <= 0 || numCols < numClients {
		return nil, fmt.Errorf("core: cannot split %d columns across %d clients", numCols, numClients)
	}
	out := make([]int, numCols)
	base := numCols / numClients
	extra := numCols % numClients
	j := 0
	for p := 0; p < numClients; p++ {
		width := base
		if p < extra {
			width++
		}
		for k := 0; k < width; k++ {
			out[j] = p
			j++
		}
	}
	return out, nil
}

// Train runs the full training loop. The optional progress callback
// receives (round, criticLoss, generatorLoss). With CheckpointDir set, a
// checkpoint is written every CheckpointEvery rounds and after the final
// round; a checkpoint failure stops training at the next round boundary.
func (g *GTV) Train(progress func(round int, dLoss, gLoss float64)) error {
	if g.ckptDir == "" {
		return g.server.Train(progress)
	}
	every := g.ckptEvery
	if every <= 0 {
		every = 1
	}
	var ckptErr error
	err := g.server.Train(func(round int, dLoss, gLoss float64) {
		if progress != nil {
			progress(round, dLoss, gLoss)
		}
		if ckptErr == nil && (round+1)%every == 0 {
			_, ckptErr = g.server.SaveCheckpoint(g.ckptDir)
		}
	})
	if err != nil {
		return err
	}
	if ckptErr != nil {
		return fmt.Errorf("core: checkpointing: %w", ckptErr)
	}
	if g.server.Rounds()%every != 0 {
		if _, err := g.server.SaveCheckpoint(g.ckptDir); err != nil {
			return fmt.Errorf("core: final checkpoint: %w", err)
		}
	}
	return nil
}

// Checkpoint writes a federation checkpoint into dir immediately and
// returns its path.
func (g *GTV) Checkpoint(dir string) (string, error) {
	return g.server.SaveCheckpoint(dir)
}

// Rounds returns the number of completed training rounds — non-zero right
// after New when Options.Resume restored a checkpoint.
func (g *GTV) Rounds() int { return g.server.Rounds() }

// TrainRound runs a single round (for callers driving their own loop).
func (g *GTV) TrainRound() (dLoss, gLoss float64, err error) {
	return g.server.TrainRound()
}

// Synthesize generates n rows of joint synthetic data.
func (g *GTV) Synthesize(n int) (*encoding.Table, error) {
	return g.server.Synthesize(n)
}

// SynthesizeParts generates n rows and also returns each client's
// synthetic slice (needed by the Avg-client/Across-client metrics).
func (g *GTV) SynthesizeParts(n int) (*encoding.Table, []*encoding.Table, error) {
	return g.server.SynthesizeParts(n)
}

// ClientTables returns the clients' current (shuffled) local tables. The
// column order matches the order client tables were passed to New.
func (g *GTV) ClientTables() []*encoding.Table {
	out := make([]*encoding.Table, len(g.clients))
	for i, c := range g.clients {
		out[i] = c.Table()
	}
	return out
}

// Ratios exposes the feature-ratio vector P_r.
func (g *GTV) Ratios() []float64 { return g.server.Ratios() }

// CommStats returns the accumulated server<->client payload accounting.
func (g *GTV) CommStats() vfl.CommStats { return g.server.CommStats() }

// Centralized re-exports the baseline so downstream code only imports core.
type Centralized = gan.Centralized

// NewCentralized builds the paper's centralized CTGAN baseline with
// hyper-parameters matching the given options.
func NewCentralized(table *encoding.Table, opts Options) (*Centralized, error) {
	cfg := gan.Config{
		Rounds:     opts.Rounds,
		DiscSteps:  opts.DiscSteps,
		BatchSize:  opts.BatchSize,
		NoiseDim:   opts.NoiseDim,
		BlockDim:   opts.BlockDim,
		GenBlocks:  2,
		DiscBlocks: 2,
		LR:         opts.LR,
		Pac:        opts.Pac,
		Seed:       opts.Seed,
	}
	return gan.NewCentralizedStored(table, cfg, opts.storage("central"))
}

// SynthesizeCondition generates n rows conditioned on one category of one
// client's categorical column ("control the class of generation", §2.2).
// clientIdx names the owning client (in the order tables were passed to
// New); column and categoryLabel refer to that client's schema.
func (g *GTV) SynthesizeCondition(n, clientIdx int, column, categoryLabel string) (*encoding.Table, error) {
	if clientIdx < 0 || clientIdx >= len(g.clients) {
		return nil, fmt.Errorf("core: client %d out of range %d", clientIdx, len(g.clients))
	}
	spanIdx, category, err := g.clients[clientIdx].ResolveCondition(column, categoryLabel)
	if err != nil {
		return nil, err
	}
	return g.server.SynthesizeCondition(n, clientIdx, spanIdx, category)
}
