// Whole-process benchmarks of the gtvcol data plane: gtv-train runs as a
// subprocess (so peak RSS is the process's real high-water mark, not the
// test binary's) with the encoded matrix resident in memory versus
// streamed from an on-disk columnar store. Recorded as JSON in
// BENCH_data.json by `make bench-data`; see EXPERIMENTS.md.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// dataPlaneRounds and the default batch/disc-steps determine how many real
// rows each run gathers; every configuration samples the same count, so
// rows/s ratios compare sampling paths, not workloads.
const (
	dataPlaneRounds    = 20
	dataPlaneBatch     = 64
	dataPlaneDiscSteps = 3
)

var trainingLineRE = regexp.MustCompile(`training: (\d+) rounds in ([^\s]+)`)

// runGTVTrain execs one gtv-train run and returns the training-phase wall
// time and the subprocess's peak RSS in bytes.
func runGTVTrain(b *testing.B, bin string, args []string) (trainTime time.Duration, peakRSS int64) {
	b.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		b.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	m := trainingLineRE.FindSubmatch(out)
	if m == nil {
		b.Fatalf("no training-time line in output:\n%s", out)
	}
	d, err := time.ParseDuration(string(m[2]))
	if err != nil {
		b.Fatalf("parsing training time %q: %v", m[2], err)
	}
	ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage)
	if !ok {
		b.Fatal("no rusage for subprocess")
	}
	return d, ru.Maxrss * 1024 // Maxrss is KiB on Linux
}

func dirBytes(b *testing.B, dir string) int64 {
	b.Helper()
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		b.Fatalf("sizing %s: %v", dir, err)
	}
	return total
}

// BenchmarkDataPlane runs gtv-train at 1M and 10M synthetic-Adult rows with
// the encoded matrix (a) resident in memory, (b) freshly encoded into a
// gtvcol store and streamed through the block cache, and (c) reread from
// the already-encoded store (the rerun path: fitting and encoding skipped
// entirely). Per run it reports training-phase sampling throughput, peak
// RSS, and the on-disk store size. Requires GTV_TRAIN_BIN (a built
// gtv-train binary); `make bench-data` sets it up.
func BenchmarkDataPlane(b *testing.B) {
	bin := os.Getenv("GTV_TRAIN_BIN")
	if bin == "" {
		b.Skip("GTV_TRAIN_BIN not set; run via `make bench-data`")
	}

	baseArgs := func(rows int, federated bool) []string {
		args := []string{
			"-dataset", "adult",
			"-rows", strconv.Itoa(rows),
			"-rounds", strconv.Itoa(dataPlaneRounds),
			"-batch", strconv.Itoa(dataPlaneBatch),
			"-disc-steps", strconv.Itoa(dataPlaneDiscSteps),
			"-seed", "7",
			"-skip-eval",
			"-log-every", "0",
		}
		if !federated {
			args = append(args, "-centralized")
		}
		return args
	}
	// Real rows gathered across the run: disc-steps batches per round.
	sampled := float64(dataPlaneRounds * dataPlaneDiscSteps * dataPlaneBatch)

	// The streamed sub-benchmarks encode into directories under the outer
	// benchmark's temp root (which outlives the sub-benchmarks); the
	// matching cached sub-benchmarks rerun against them.
	root := b.TempDir()
	dirs := map[string]string{}
	run := func(name string, rows int, federated bool, mode string) {
		b.Run(name, func(b *testing.B) {
			var trainTotal time.Duration
			var peakMax, disk int64
			for i := 0; i < b.N; i++ {
				args := baseArgs(rows, federated)
				switch mode {
				case "mem":
				case "streamed":
					dir := filepath.Join(root, fmt.Sprintf("%s-%d", name, i))
					if err := os.MkdirAll(dir, 0o755); err != nil {
						b.Fatal(err)
					}
					dirs[fmt.Sprintf("%d-%v", rows, federated)] = dir
					args = append(args, "-data-dir", dir, "-block-cache", "1024")
				case "cached":
					dir := dirs[fmt.Sprintf("%d-%v", rows, federated)]
					if dir == "" {
						b.Skip("streamed variant did not run")
					}
					args = append(args, "-data-dir", dir, "-block-cache", "1024")
				}
				trainTime, peak := runGTVTrain(b, bin, args)
				trainTotal += trainTime
				if peak > peakMax {
					peakMax = peak
				}
				if mode != "mem" {
					disk = dirBytes(b, dirs[fmt.Sprintf("%d-%v", rows, federated)])
				}
			}
			b.ReportMetric(sampled*float64(b.N)/trainTotal.Seconds(), "rows/s")
			b.ReportMetric(float64(peakMax)/(1<<20), "peakMB/run")
			if mode != "mem" {
				b.ReportMetric(float64(disk)/(1<<20), "diskMB/run")
			}
		})
	}

	run("centralized-1M-mem", 1_000_000, false, "mem")
	run("centralized-1M-streamed", 1_000_000, false, "streamed")
	run("centralized-1M-cached", 1_000_000, false, "cached")
	run("federated-1M-mem", 1_000_000, true, "mem")
	run("federated-1M-streamed", 1_000_000, true, "streamed")
	run("centralized-10M-mem", 10_000_000, false, "mem")
	run("centralized-10M-streamed", 10_000_000, false, "streamed")
	run("centralized-10M-cached", 10_000_000, false, "cached")
}
