GO ?= go

.PHONY: all build vet lint lint-json test race fuzz ci bench bench-round bench-kernels bench-comm bench-data

# Per-fuzzer budget for the `fuzz` target; override with
# `make fuzz FUZZTIME=1m` for longer local hunts.
FUZZTIME ?= 5s

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis (internal/lint): pool/tape lifetimes,
# seeded-randomness discipline, map-order determinism, float comparison
# hygiene, mutex-guard annotations, dropped errors, the privflow
# privacy-boundary taint analysis, and the concurrency suite — lockorder
# (lock-acquisition cycles, blocking ops under a held lock), goroleak
# (every spawned goroutine needs a provable exit path), and cancelflow
# (deadlines propagate into every blocking callee on the fan-out path) —
# plus shapeflow, interprocedural tensor shape inference over //shape:
# contracts that proves runtime shape panics unreachable.
# Findings are cached under .lintcache/ keyed by file contents, so
# unchanged repeat runs skip type-checking; -timing prints per-rule wall
# time so a cache regression shows up as nonzero time on a warm run.
lint:
	$(GO) run ./cmd/gtv-lint -timing ./...

# Machine-readable findings for tooling; exit status 1 (findings exist)
# still writes the report, only a lint crash (exit 2) fails the target.
# No -timing: the report is committed and drift-checked by ci.sh, so it
# must be byte-deterministic (wall times are not).
lint-json:
	$(GO) run ./cmd/gtv-lint -json ./... > LINT_findings.json || [ $$? -eq 1 ]

test:
	$(GO) test ./...

# Race-detector runs: short mode across the module (heavy GAN-training
# tests skip themselves; everything concurrency-relevant still runs),
# full mode for the concurrency-critical packages — including the
# teardown tests that assert goroutine counts return to baseline after
# Close. internal/core stays off the full-mode list on purpose: its
# non-short tests are race-instrumented GAN training (~90s of matmul)
# with no goroutine coverage the vfl/tensor passes don't already have.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/vfl/... ./internal/tensor/... ./internal/autograd/...

# Short-budget runs of every fuzzer in the module: the gtvsnap checkpoint
# decoder, the gtvwire frame decoder, the blocked-matmul kernel, and the
# gtvcol columnar file decoder (hostile bytes + encode/decode round-trip).
# Each guards a byte-level or numeric contract that unit tests only sample.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime $(FUZZTIME) ./internal/snap
	$(GO) test -run '^$$' -fuzz FuzzWireFrameDecode -fuzztime $(FUZZTIME) ./internal/vfl
	$(GO) test -run '^$$' -fuzz FuzzMatMulAgainstNaive -fuzztime $(FUZZTIME) ./internal/tensor
	$(GO) test -run '^$$' -fuzz FuzzColFileDecode -fuzztime $(FUZZTIME) ./internal/coldata
	$(GO) test -run '^$$' -fuzz FuzzColRoundTrip -fuzztime $(FUZZTIME) ./internal/coldata

ci: vet lint build test race fuzz

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# The sequential-vs-concurrent round benchmarks behind the numbers recorded
# in CHANGES.md.
bench-round:
	$(GO) test -run xxx -bench 'BenchmarkGTVTrainingRound(Latency)?$$' -benchtime 5x .

# Kernel microbenchmarks (matmul variants, broadcast ops, backward passes),
# recorded as JSON in BENCH_kernels.json. The raw go test output is echoed
# to stderr by the converter.
bench-kernels:
	$(GO) test -run xxx -bench . ./internal/tensor ./internal/autograd \
		| $(GO) run ./cmd/benchjson > BENCH_kernels.json

# Transport benchmarks: gob vs gtvwire-binary round-trip latency and
# allocs/op at paper-scale payloads, plus the delayed-round latency
# comparison. Recorded as JSON in BENCH_comm.json.
bench-comm:
	{ $(GO) test -run xxx -bench BenchmarkWireRoundTrip -benchtime 50x ./internal/vfl ; \
	  $(GO) test -run xxx -bench 'BenchmarkGTVTrainingRoundLatency$$' -benchtime 5x . ; } \
		| $(GO) run ./cmd/benchjson > BENCH_comm.json

# Data-plane benchmarks: whole-process gtv-train runs (in-memory vs gtvcol
# streamed, centralized and federated, up to 10M rows) measuring training
# throughput, peak RSS, and on-disk store size. Recorded as JSON in
# BENCH_data.json. Subprocess-driven so peak RSS is the real number.
bench-data:
	$(GO) build -o /tmp/gtv-train-bench ./cmd/gtv-train
	GTV_TRAIN_BIN=/tmp/gtv-train-bench $(GO) test -run xxx -bench BenchmarkDataPlane -benchtime 1x -timeout 120m . \
		| $(GO) run ./cmd/benchjson > BENCH_data.json
