GO ?= go

.PHONY: all build vet test race ci bench bench-round

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector runs: short mode across the module (heavy GAN-training
# tests skip themselves), full mode for the concurrency-critical packages.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/vfl/... ./internal/tensor/...

ci: vet build test race

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# The sequential-vs-concurrent round benchmarks behind the numbers recorded
# in CHANGES.md.
bench-round:
	$(GO) test -run xxx -bench 'BenchmarkGTVTrainingRound(Latency)?$$' -benchtime 5x .
