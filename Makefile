GO ?= go

.PHONY: all build vet lint test race ci bench bench-round bench-kernels

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis (internal/lint): pool/tape lifetimes,
# seeded-randomness discipline, map-order determinism, float comparison
# hygiene, mutex-guard annotations, dropped errors.
lint:
	$(GO) run ./cmd/gtv-lint ./...

test:
	$(GO) test ./...

# Race-detector runs: short mode across the module (heavy GAN-training
# tests skip themselves), full mode for the concurrency-critical packages.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/vfl/... ./internal/tensor/... ./internal/autograd/...

ci: vet lint build test race

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# The sequential-vs-concurrent round benchmarks behind the numbers recorded
# in CHANGES.md.
bench-round:
	$(GO) test -run xxx -bench 'BenchmarkGTVTrainingRound(Latency)?$$' -benchtime 5x .

# Kernel microbenchmarks (matmul variants, broadcast ops, backward passes),
# recorded as JSON in BENCH_kernels.json. The raw go test output is echoed
# to stderr by the converter.
bench-kernels:
	$(GO) test -run xxx -bench . ./internal/tensor ./internal/autograd \
		| $(GO) run ./cmd/benchjson > BENCH_kernels.json
