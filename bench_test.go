// Package repro's root benchmarks regenerate every table and figure of the
// GTV paper at smoke scale (one full experiment per benchmark iteration).
// Full-scale regeneration with recorded output is done by
// cmd/gtv-experiments; see EXPERIMENTS.md. Micro-benchmarks for the
// numeric substrates live in their own packages (tensor, autograd, gmm).
package main

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/vfl"
)

// benchScale is small enough that one experiment iteration completes in
// seconds; pass -rows etc. to cmd/gtv-experiments for the recorded runs.
func benchScale() experiments.Scale {
	s := experiments.SmokeScale()
	s.Datasets = []string{"loan"}
	s.Rounds = 6
	return s
}

var (
	planG20 = vfl.Plan{DiscServer: 2, GenClient: 2} // paper's D_0^2 G_2^0
	planG02 = vfl.Plan{DiscServer: 2, GenServer: 2} // paper's D_0^2 G_0^2
)

// BenchmarkFig3MotivationCaseStudy regenerates Fig. 3 (Shapley-ranked
// feature settings A/B/C vs MLP F1).
func BenchmarkFig3MotivationCaseStudy(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8NeuralNetworkPartition regenerates Fig. 8 (nine partition
// plans + centralized baseline across the quality metrics).
func BenchmarkFig8NeuralNetworkPartition(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10DataPartitionD20G02 regenerates Fig. 10 (1090/5050/9010
// Shapley splits under the generator-on-clients plan).
func BenchmarkFig10DataPartitionD20G02(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDataPartition(s, planG20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11DataPartitionD20G20 regenerates Fig. 11 (same splits under
// the generator-on-server plan).
func BenchmarkFig11DataPartitionD20G20(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDataPartition(s, planG02); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2DiffCorrDataPartition regenerates Table 2 (Diff.Corr for
// both plans across the three data partitions).
func BenchmarkTable2DiffCorrDataPartition(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r20, err := experiments.RunDataPartition(s, planG20)
		if err != nil {
			b.Fatal(err)
		}
		r02, err := experiments.RunDataPartition(s, planG02)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderTable2(io.Discard, []*experiments.DataPartitionResult{r20, r02}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12ClientCountG02 regenerates Fig. 12 (2-3 clients, default
// vs enlarged generator, generator-on-server plan).
func BenchmarkFig12ClientCountG02(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunClientCount(s, planG02, []int{2, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13ClientCountG20 regenerates Fig. 13 (same sweep for the
// generator-on-clients plan).
func BenchmarkFig13ClientCountG20(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunClientCount(s, planG20, []int{2, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3DiffCorrClientCount regenerates Table 3 (Diff.Corr across
// client counts, default/enlarged generators, both plans).
func BenchmarkTable3DiffCorrClientCount(b *testing.B) {
	s := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r20, err := experiments.RunClientCount(s, planG20, []int{2, 3})
		if err != nil {
			b.Fatal(err)
		}
		r02, err := experiments.RunClientCount(s, planG02, []int{2, 3})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderTable3(io.Discard, []*experiments.ClientCountResult{r20, r02}, s.Datasets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGTVTrainingRound measures one full distributed round (critic
// steps + generator step + shared shuffle), comparing the sequential driver
// (parallel=1) against the concurrent fan-out (parallel=0) at two federation
// sizes. Both settings produce bit-identical models; only wall-clock
// differs.
func BenchmarkGTVTrainingRound(b *testing.B) {
	for _, clients := range []int{2, 4} {
		for _, par := range []int{1, 0} {
			clients, par := clients, par
			mode := "concurrent"
			if par == 1 {
				mode = "sequential"
			}
			b.Run(fmt.Sprintf("clients=%d/%s", clients, mode), func(b *testing.B) {
				d, err := datasets.Generate("intrusion", datasets.Config{Rows: 300, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				assignment, err := core.EvenAssignment(d.Table.Cols(), clients)
				if err != nil {
					b.Fatal(err)
				}
				opts := core.DefaultOptions()
				opts.Rounds = 1
				opts.Parallelism = par
				g, err := core.NewFromAssignment(d.Table, assignment, clients, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := g.TrainRound(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGTVTrainingRoundLatency repeats the sequential-vs-concurrent
// comparison with a simulated 2ms transport delay on every client call —
// the realistic deployment regime, where round time is dominated by network
// latency rather than local matrix math. The concurrent driver overlaps the
// per-client waits, so it wins even on a single core. The gob and binary
// variants run the same delayed clients behind real TCP loopback
// transports, comparing net/rpc+gob against the gtvwire binary protocol
// under the concurrent driver.
func BenchmarkGTVTrainingRoundLatency(b *testing.B) {
	const numClients = 4
	run := func(par int, wire string) func(*testing.B) {
		return func(b *testing.B) {
			d, err := datasets.Generate("intrusion", datasets.Config{Rows: 300, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			assignment, err := core.EvenAssignment(d.Table.Cols(), numClients)
			if err != nil {
				b.Fatal(err)
			}
			parts, err := d.Table.VerticalSplit(assignment, numClients)
			if err != nil {
				b.Fatal(err)
			}
			coord := vfl.NewShuffleCoordinator(7)
			clients := make([]vfl.Client, numClients)
			for i, part := range parts {
				lc, err := vfl.NewLocalClient(part, coord, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				slow := vfl.NewFaultyTransport(lc)
				slow.SetDelay(2 * time.Millisecond)
				switch wire {
				case "local":
					clients[i] = slow
				case "gob":
					lis, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(func() { lis.Close() })
					go func() { _ = vfl.ServeClient(lis, slow) }()
					proxy, err := vfl.DialClient("tcp", lis.Addr().String())
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(func() { proxy.Close() })
					clients[i] = proxy
				case "binary":
					lis, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(func() { lis.Close() })
					go func() { _ = vfl.ServeClientWire(lis, slow) }()
					proxy, err := vfl.DialWireClient("tcp", lis.Addr().String())
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(func() { proxy.Close() })
					clients[i] = proxy
				}
			}
			cfg := vfl.DefaultConfig()
			cfg.Plan = planG20
			cfg.Rounds = 1
			cfg.Parallelism = par
			srv, err := vfl.NewServer(clients, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := srv.TrainRound(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run(fmt.Sprintf("clients=%d/delay=2ms/sequential", numClients), run(1, "local"))
	b.Run(fmt.Sprintf("clients=%d/delay=2ms/concurrent", numClients), run(0, "local"))
	b.Run(fmt.Sprintf("clients=%d/delay=2ms/concurrent/gob", numClients), run(0, "gob"))
	b.Run(fmt.Sprintf("clients=%d/delay=2ms/concurrent/binary", numClients), run(0, "binary"))
}

// BenchmarkGTVSynthesize measures joint synthesis throughput.
func BenchmarkGTVSynthesize(b *testing.B) {
	d, err := datasets.Generate("loan", datasets.Config{Rows: 300, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	assignment, err := core.EvenAssignment(d.Table.Cols(), 2)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Rounds = 2
	g, err := core.NewFromAssignment(d.Table, assignment, 2, opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := g.Train(nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Synthesize(256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainingRoundByClients measures how one training round scales
// with the number of participating clients (the paper's scalability
// dimension, §4.3.3).
func BenchmarkTrainingRoundByClients(b *testing.B) {
	for _, clients := range []int{2, 3, 4, 5} {
		clients := clients
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			d, err := datasets.Generate("intrusion", datasets.Config{Rows: 300, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			assignment, err := core.EvenAssignment(d.Table.Cols(), clients)
			if err != nil {
				b.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.Rounds = 1
			g, err := core.NewFromAssignment(d.Table, assignment, clients, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := g.TrainRound(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainingRoundFaithfulVsBroadcast compares the paper's
// index-privacy mode (full local pass) against the cheaper broadcast mode.
func BenchmarkTrainingRoundFaithfulVsBroadcast(b *testing.B) {
	for _, faithful := range []bool{false, true} {
		faithful := faithful
		name := "broadcast"
		if faithful {
			name = "faithful"
		}
		b.Run(name, func(b *testing.B) {
			d, err := datasets.Generate("loan", datasets.Config{Rows: 500, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			assignment, err := core.EvenAssignment(d.Table.Cols(), 2)
			if err != nil {
				b.Fatal(err)
			}
			opts := core.DefaultOptions()
			opts.Rounds = 1
			opts.FaithfulRealPass = faithful
			g, err := core.NewFromAssignment(d.Table, assignment, 2, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := g.TrainRound(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
