#!/bin/sh
# ci.sh — the checks every change must pass, in increasing cost order:
# vet, the repo's own static analyzers (gtv-lint: lifetimes, determinism,
# guarded fields, dropped errors, the privflow privacy-boundary taint
# analysis, and the concurrency suite — lockorder, goroleak, cancelflow —
# see DESIGN.md "Static analysis", "Privacy boundary", and "Concurrency
# rules"), a regenerate-and-diff of the committed LINT_findings.json
# (the machine-readable report, including shapeflow's proved-ops
# coverage stats, must match a fresh run — stats drift or new findings
# fail here), build, full tests (the lint fixture packages run even under
# -short), then the race detector over the whole module in short mode
# (GAN-training tests skip themselves; every concurrency path still runs)
# and in full mode over the concurrency-critical packages (the vfl
# protocol driver and its teardown tests — goroutine counts must return
# to baseline after Close — the gtvwire pipelined transport with its
# demux goroutine, per-connection server goroutines, and shared
# frame-buffer pool, and the tensor/autograd substrate — worker pool,
# buffer free lists — it fans out over). Last, a short-budget pass over
# every fuzzer in the module (snapshot decoder, wire frame decoder,
# matmul kernel) so decoder defenses regress loudly, not silently.
set -eux

go vet ./...
make lint
make lint-json
git diff --exit-code -- LINT_findings.json
go build ./...
go test ./...
go test -race -short ./...
go test -race ./internal/vfl/... ./internal/tensor/... ./internal/autograd/...
make fuzz
