// Command gtv-lint runs the repo's domain-specific static analyzers (see
// internal/lint and DESIGN.md "Static analysis" / "Privacy boundary")
// over the module and exits non-zero on any finding. It is wired into
// ci.sh via `make lint`, and `make lint-json` captures machine-readable
// findings.
//
// Findings are cached under <module>/.lintcache keyed by file contents,
// so runs over an unchanged tree skip type-checking entirely; -nocache
// forces a full run.
//
// Usage:
//
//	gtv-lint              # analyze the whole module
//	gtv-lint ./...        # same
//	gtv-lint internal/vfl # only report findings under these path prefixes
//	gtv-lint -list        # print the rule catalog
//	gtv-lint -rules floateq,maporder
//	gtv-lint -json        # machine-readable findings on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtv-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdout *os.File) (int, error) {
	fs := flag.NewFlagSet("gtv-lint", flag.ContinueOnError)
	var (
		root    = fs.String("root", ".", "directory inside the module to lint")
		list    = fs.Bool("list", false, "print the rule catalog and exit")
		rules   = fs.String("rules", "", "comma-separated rule subset (default: all)")
		jsonOut = fs.Bool("json", false, "emit findings as JSON")
		nocache = fs.Bool("nocache", false, "bypass the findings cache")
		timing  = fs.Bool("timing", false, "print per-rule wall time on stderr (cached rules show 0, so cache regressions are visible)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	analyzers := lint.Analyzers()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				return 2, fmt.Errorf("unknown rule %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	var timings *lint.Timings
	if *timing {
		analyzers, timings = lint.Instrument(analyzers)
	}

	findings, err := collectFindings(*root, analyzers, *nocache)
	if err != nil {
		return 2, err
	}
	if timings != nil {
		fmt.Fprint(os.Stderr, timings.Summary())
	}

	// Positional arguments filter reported paths; "./..." (or none) means
	// everything.
	var prefixes []string
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." || arg == "." {
			prefixes = nil
			break
		}
		prefixes = append(prefixes, filepath.Clean(strings.TrimPrefix(arg, "./")))
	}
	var shown []lint.Finding
	for _, f := range findings {
		if len(prefixes) > 0 && !matchesAny(f.Pos.Filename, prefixes) {
			continue
		}
		shown = append(shown, f)
	}

	if *jsonOut {
		doc := report{Count: len(shown), Rules: names, Findings: shown}
		if timings != nil {
			doc.TimingsMs = timings.Milliseconds()
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return 2, err
		}
		if len(shown) > 0 {
			return 1, nil
		}
		return 0, nil
	}
	for _, f := range shown {
		fmt.Fprintln(stdout, f)
		if p := f.PathString(); p != "" {
			fmt.Fprintln(stdout, p)
		}
	}
	if len(shown) > 0 {
		fmt.Fprintf(stdout, "gtv-lint: %d finding(s)\n", len(shown))
		return 1, nil
	}
	return 0, nil
}

// report is the -json document: the finding count, the rule set that ran
// (so consumers can tell "no findings" from "rule not enabled"), the
// findings — each with rule, position, message, and (for module rules)
// the hop path — and, under -timing, per-rule wall time in milliseconds.
type report struct {
	Count     int
	Rules     []string
	Findings  []lint.Finding
	TimingsMs map[string]float64 `json:",omitempty"`
}

// collectFindings produces the module's findings, through the cache
// unless disabled. Any cache infrastructure failure falls back to a full
// uncached run — caching must never change results, only speed.
func collectFindings(root string, analyzers []*lint.Analyzer, nocache bool) ([]lint.Finding, error) {
	if !nocache {
		if findings, err := collectCached(root, analyzers); err == nil {
			return findings, nil
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return nil, err
	}
	findings := lint.Run(pkgs, analyzers)
	lint.Relativize(findings, loader.ModuleRoot)
	return findings, nil
}

// collectCached runs the analysis through the findings cache: per-package
// rules re-run only for packages whose content+dependency key changed,
// and the whole-module rules re-run only when anything changed.
func collectCached(root string, analyzers []*lint.Analyzer) ([]lint.Finding, error) {
	ix, err := lint.BuildModuleIndex(root)
	if err != nil {
		return nil, err
	}
	perPkg, module := lint.SplitAnalyzers(analyzers)
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	cache := lint.OpenCache(filepath.Join(ix.Root, ".lintcache"), lint.CacheSalt(ix, names))

	var all []lint.Finding
	live := make(map[string]bool)
	missed := make(map[string]bool)
	for _, rel := range ix.Dirs {
		key := cache.Key("pkg", rel, ix.PackageKey(rel))
		live[key] = true
		if cached, ok := cache.Get(key); ok {
			all = append(all, cached...)
		} else {
			missed[rel] = true
		}
	}
	moduleKey := cache.Key("module", ix.ModuleKey())
	moduleMiss := false
	if len(module) > 0 {
		live[moduleKey] = true
		if cached, ok := cache.Get(moduleKey); ok {
			all = append(all, cached...)
		} else {
			moduleMiss = true
		}
	}

	if len(missed) > 0 || moduleMiss {
		loader, err := lint.NewLoader(ix.Root)
		if err != nil {
			return nil, err
		}
		if moduleMiss {
			// A module rule must see every package, so load the whole
			// module and refresh the missed per-package entries on the way.
			pkgs, err := loader.LoadModule()
			if err != nil {
				return nil, err
			}
			for _, pkg := range pkgs {
				rel := pkgRelDir(ix.ModulePath, pkg.Path)
				if !missed[rel] {
					continue
				}
				fs := lint.RunPackage(pkg, perPkg)
				lint.Relativize(fs, ix.Root)
				if err := cache.Put(cache.Key("pkg", rel, ix.PackageKey(rel)), fs); err != nil {
					return nil, err
				}
				all = append(all, fs...)
			}
			fs := lint.RunModuleAnalyzers(pkgs, module)
			lint.Relativize(fs, ix.Root)
			if err := cache.Put(moduleKey, fs); err != nil {
				return nil, err
			}
			all = append(all, fs...)
		} else {
			// Only per-package work is stale: load just those packages
			// (their dependencies type-check on demand, without running
			// analyzers over them).
			for _, rel := range ix.Dirs {
				if !missed[rel] {
					continue
				}
				ip := ix.ModulePath
				if rel != "." {
					ip = ix.ModulePath + "/" + rel
				}
				pkg, err := loader.LoadDir(filepath.Join(ix.Root, filepath.FromSlash(rel)), ip)
				if err != nil {
					return nil, err
				}
				fs := lint.RunPackage(pkg, perPkg)
				lint.Relativize(fs, ix.Root)
				if err := cache.Put(cache.Key("pkg", rel, ix.PackageKey(rel)), fs); err != nil {
					return nil, err
				}
				all = append(all, fs...)
			}
		}
	}
	cache.Prune(live)
	lint.SortFindings(all)
	return all, nil
}

// pkgRelDir maps an import path back to the module-relative directory.
func pkgRelDir(modPath, importPath string) string {
	if importPath == modPath {
		return "."
	}
	return strings.TrimPrefix(importPath, modPath+"/")
}

func matchesAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
