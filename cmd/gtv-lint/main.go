// Command gtv-lint runs the repo's domain-specific static analyzers (see
// internal/lint and DESIGN.md "Static analysis" / "Privacy boundary")
// over the module and exits non-zero on any finding. It is wired into
// ci.sh via `make lint`, and `make lint-json` captures machine-readable
// findings.
//
// Findings are cached under <module>/.lintcache keyed by file contents,
// with one entry per (package, rule) so a partial -only run fills and
// reuses the same entries as a full run instead of invalidating them;
// -nocache forces a full run.
//
// Usage:
//
//	gtv-lint              # analyze the whole module
//	gtv-lint ./...        # same
//	gtv-lint internal/vfl # only report findings under these path prefixes
//	gtv-lint -list        # print the rule catalog
//	gtv-lint -only floateq,maporder
//	gtv-lint -json        # machine-readable findings on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtv-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdout *os.File) (int, error) {
	fs := flag.NewFlagSet("gtv-lint", flag.ContinueOnError)
	var (
		root    = fs.String("root", ".", "directory inside the module to lint")
		list    = fs.Bool("list", false, "print the rule catalog and exit")
		only    = fs.String("only", "", "comma-separated rule subset (default: all)")
		rules   = fs.String("rules", "", "deprecated alias for -only")
		jsonOut = fs.Bool("json", false, "emit findings as JSON")
		nocache = fs.Bool("nocache", false, "bypass the findings cache")
		timing  = fs.Bool("timing", false, "print per-rule wall time on stderr (cached rules show 0, so cache regressions are visible)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	analyzers := lint.Analyzers()
	sel := *only
	if sel == "" {
		sel = *rules
	}
	if sel != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(sel, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				return 2, fmt.Errorf("unknown rule %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	var timings *lint.Timings
	if *timing {
		analyzers, timings = lint.Instrument(analyzers)
	}

	findings, stats, err := collectFindings(*root, analyzers, *nocache)
	if err != nil {
		return 2, err
	}
	if timings != nil {
		fmt.Fprint(os.Stderr, timings.Summary())
	}

	// Positional arguments filter reported paths; "./..." (or none) means
	// everything.
	var prefixes []string
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." || arg == "." {
			prefixes = nil
			break
		}
		prefixes = append(prefixes, filepath.Clean(strings.TrimPrefix(arg, "./")))
	}
	var shown []lint.Finding
	for _, f := range findings {
		if len(prefixes) > 0 && !matchesAny(f.Pos.Filename, prefixes) {
			continue
		}
		shown = append(shown, f)
	}

	if *jsonOut {
		doc := report{Count: len(shown), Rules: names, Findings: shown, Stats: stats}
		if timings != nil {
			doc.TimingsMs = timings.Milliseconds()
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return 2, err
		}
		if len(shown) > 0 {
			return 1, nil
		}
		return 0, nil
	}
	for _, f := range shown {
		fmt.Fprintln(stdout, f)
		if p := f.PathString(); p != "" {
			fmt.Fprintln(stdout, p)
		}
	}
	if len(shown) > 0 {
		fmt.Fprintf(stdout, "gtv-lint: %d finding(s)\n", len(shown))
		return 1, nil
	}
	return 0, nil
}

// report is the -json document: the finding count, the rule set that ran
// (so consumers can tell "no findings" from "rule not enabled"), the
// findings — each with rule, position, message, and (for module rules)
// the hop path — rule-namespaced coverage stats (e.g.
// "shapeflow.ops_proved"), and, under -timing, per-rule wall time in
// milliseconds.
type report struct {
	Count     int
	Rules     []string
	Findings  []lint.Finding
	Stats     map[string]int     `json:",omitempty"`
	TimingsMs map[string]float64 `json:",omitempty"`
}

// collectFindings produces the module's findings and coverage stats,
// through the cache unless disabled. Any cache infrastructure failure
// falls back to a full uncached run — caching must never change results,
// only speed.
func collectFindings(root string, analyzers []*lint.Analyzer, nocache bool) ([]lint.Finding, lint.Stats, error) {
	if !nocache {
		if findings, stats, err := collectCached(root, analyzers); err == nil {
			return findings, stats, nil
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return nil, nil, err
	}
	perPkg, module := lint.SplitAnalyzers(analyzers)
	var all []lint.Finding
	stats := make(lint.Stats)
	for _, pkg := range pkgs {
		for _, a := range perPkg {
			all = append(all, lint.RunPackageRule(pkg, a)...)
		}
		all = append(all, lint.PackageSuppressionFindings(pkg)...)
	}
	for _, a := range module {
		fs, st := lint.RunModuleRule(pkgs, a)
		all = append(all, fs...)
		stats.Merge(st)
	}
	lint.Relativize(all, loader.ModuleRoot)
	lint.SortFindings(all)
	return all, stats, nil
}

// collectCached runs the analysis through the findings cache. Entries are
// keyed per (package, rule) — plus one suppression entry per package and
// one entry per module rule — so a rule re-runs only where its inputs
// changed, and a -only subset run touches only its own entries. The
// prune live set always covers the full rule registry, so a partial run
// can never evict entries a full run still needs.
func collectCached(root string, analyzers []*lint.Analyzer) ([]lint.Finding, lint.Stats, error) {
	ix, err := lint.BuildModuleIndex(root)
	if err != nil {
		return nil, nil, err
	}
	perPkg, module := lint.SplitAnalyzers(analyzers)
	cache := lint.OpenCache(filepath.Join(ix.Root, ".lintcache"), lint.CacheSalt(ix))

	allPerPkg, allModule := lint.SplitAnalyzers(lint.Analyzers())
	live := make(map[string]bool)
	for _, rel := range ix.Dirs {
		pk := ix.PackageKey(rel)
		for _, a := range allPerPkg {
			live[cache.Key("pkg", rel, pk, a.Name)] = true
		}
		live[cache.Key("sup", rel, pk)] = true
	}
	modKey := ix.ModuleKey()
	for _, a := range allModule {
		live[cache.Key("module", modKey, a.Name)] = true
	}

	var all []lint.Finding
	stats := make(lint.Stats)
	missed := make(map[string][]*lint.Analyzer)
	supMissed := make(map[string]bool)
	needLoad := make(map[string]bool)
	for _, rel := range ix.Dirs {
		pk := ix.PackageKey(rel)
		for _, a := range perPkg {
			if fs, _, ok := cache.Get(cache.Key("pkg", rel, pk, a.Name)); ok {
				all = append(all, fs...)
			} else {
				missed[rel] = append(missed[rel], a)
				needLoad[rel] = true
			}
		}
		if fs, _, ok := cache.Get(cache.Key("sup", rel, pk)); ok {
			all = append(all, fs...)
		} else {
			supMissed[rel] = true
			needLoad[rel] = true
		}
	}
	var moduleMissed []*lint.Analyzer
	for _, a := range module {
		if fs, st, ok := cache.Get(cache.Key("module", modKey, a.Name)); ok {
			all = append(all, fs...)
			stats.Merge(st)
		} else {
			moduleMissed = append(moduleMissed, a)
		}
	}

	// refresh re-runs a package's stale rules (and suppression scan) and
	// stores each result under its own key.
	refresh := func(rel string, pkg *lint.Package) error {
		pk := ix.PackageKey(rel)
		for _, a := range missed[rel] {
			fs := lint.RunPackageRule(pkg, a)
			lint.Relativize(fs, ix.Root)
			if err := cache.Put(cache.Key("pkg", rel, pk, a.Name), fs, nil); err != nil {
				return err
			}
			all = append(all, fs...)
		}
		if supMissed[rel] {
			fs := lint.PackageSuppressionFindings(pkg)
			lint.Relativize(fs, ix.Root)
			if err := cache.Put(cache.Key("sup", rel, pk), fs, nil); err != nil {
				return err
			}
			all = append(all, fs...)
		}
		return nil
	}

	if len(moduleMissed) > 0 {
		// A module rule must see every package, so load the whole module
		// and refresh the missed per-package entries on the way.
		loader, err := lint.NewLoader(ix.Root)
		if err != nil {
			return nil, nil, err
		}
		pkgs, err := loader.LoadModule()
		if err != nil {
			return nil, nil, err
		}
		for _, pkg := range pkgs {
			rel := pkgRelDir(ix.ModulePath, pkg.Path)
			if !needLoad[rel] {
				continue
			}
			if err := refresh(rel, pkg); err != nil {
				return nil, nil, err
			}
		}
		for _, a := range moduleMissed {
			fs, st := lint.RunModuleRule(pkgs, a)
			lint.Relativize(fs, ix.Root)
			if err := cache.Put(cache.Key("module", modKey, a.Name), fs, st); err != nil {
				return nil, nil, err
			}
			all = append(all, fs...)
			stats.Merge(st)
		}
	} else if len(needLoad) > 0 {
		// Only per-package work is stale: load just those packages (their
		// dependencies type-check on demand, without running analyzers
		// over them).
		loader, err := lint.NewLoader(ix.Root)
		if err != nil {
			return nil, nil, err
		}
		for _, rel := range ix.Dirs {
			if !needLoad[rel] {
				continue
			}
			ip := ix.ModulePath
			if rel != "." {
				ip = ix.ModulePath + "/" + rel
			}
			pkg, err := loader.LoadDir(filepath.Join(ix.Root, filepath.FromSlash(rel)), ip)
			if err != nil {
				return nil, nil, err
			}
			if err := refresh(rel, pkg); err != nil {
				return nil, nil, err
			}
		}
	}
	cache.Prune(live)
	lint.SortFindings(all)
	return all, stats, nil
}

// pkgRelDir maps an import path back to the module-relative directory.
func pkgRelDir(modPath, importPath string) string {
	if importPath == modPath {
		return "."
	}
	return strings.TrimPrefix(importPath, modPath+"/")
}

func matchesAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
