// Command gtv-lint runs the repo's domain-specific static analyzers (see
// internal/lint and DESIGN.md "Static analysis") over the module and
// exits non-zero on any finding. It is wired into ci.sh between go vet
// and the build, and `make lint` runs it standalone.
//
// Usage:
//
//	gtv-lint              # analyze the whole module
//	gtv-lint ./...        # same
//	gtv-lint internal/vfl # only report findings under these path prefixes
//	gtv-lint -list        # print the rule catalog
//	gtv-lint -rules floateq,maporder
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gtv-lint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdout *os.File) (int, error) {
	fs := flag.NewFlagSet("gtv-lint", flag.ContinueOnError)
	var (
		root  = fs.String("root", ".", "directory inside the module to lint")
		list  = fs.Bool("list", false, "print the rule catalog and exit")
		rules = fs.String("rules", "", "comma-separated rule subset (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	analyzers := lint.Analyzers()
	if *rules != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*rules, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				return 2, fmt.Errorf("unknown rule %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(*root)
	if err != nil {
		return 2, err
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		return 2, err
	}
	findings := lint.Run(pkgs, analyzers)
	lint.Relativize(findings, loader.ModuleRoot)

	// Positional arguments filter reported paths; "./..." (or none) means
	// everything.
	var prefixes []string
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." || arg == "." {
			prefixes = nil
			break
		}
		prefixes = append(prefixes, filepath.Clean(strings.TrimPrefix(arg, "./")))
	}
	shown := 0
	for _, f := range findings {
		if len(prefixes) > 0 && !matchesAny(f.Pos.Filename, prefixes) {
			continue
		}
		fmt.Fprintln(stdout, f)
		shown++
	}
	if shown > 0 {
		fmt.Fprintf(stdout, "gtv-lint: %d finding(s)\n", shown)
		return 1, nil
	}
	return 0, nil
}

func matchesAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
