package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// pinTestModule lays out a minimal module with exactly one floateq
// finding, so full and subset runs have observably different outputs.
func pinTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/pin\n\ngo 1.21\n",
		"a.go":   "package pin\n\n// Eq compares floats exactly.\nfunc Eq(a, b float64) bool { return a == b }\n",
	}
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// runLint invokes the CLI entry point and returns its exit code and
// captured stdout.
func runLint(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	code, err := run(args, out)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

// snapshotCache maps each cache entry file to its contents.
func snapshotCache(t *testing.T, dir string) map[string]string {
	t.Helper()
	snap := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("cache dir missing: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[e.Name()] = string(data)
	}
	return snap
}

// TestOnlyRunDoesNotPoisonFullCache pins the per-rule cache contract: a
// full run populates the cache; a subsequent -only subset run must leave
// every full-run entry byte-identical (no eviction, no rewrite), and a
// second full run must reproduce the first run's output from that cache.
func TestOnlyRunDoesNotPoisonFullCache(t *testing.T) {
	root := pinTestModule(t)
	cacheDir := filepath.Join(root, ".lintcache")

	code, full1 := runLint(t, "-root", root)
	if code != 1 || !strings.Contains(full1, "floateq") {
		t.Fatalf("full run: code %d, output %q; want code 1 with a floateq finding", code, full1)
	}
	snap := snapshotCache(t, cacheDir)
	if len(snap) == 0 {
		t.Fatal("full run left no cache entries")
	}

	// Subset run on a rule with no findings here: exit 0, and the full
	// run's entries survive untouched.
	code, sub := runLint(t, "-root", root, "-only", "errdrop")
	if code != 0 || strings.Contains(sub, "floateq") {
		t.Fatalf("-only errdrop run: code %d, output %q; want clean", code, sub)
	}
	after := snapshotCache(t, cacheDir)
	for name, content := range snap {
		got, ok := after[name]
		if !ok {
			t.Errorf("-only run evicted full-run cache entry %s", name)
			continue
		}
		if got != content {
			t.Errorf("-only run rewrote full-run cache entry %s", name)
		}
	}

	// The subset's findings must also match a full run's view of that rule.
	code, only := runLint(t, "-root", root, "-only", "floateq")
	if code != 1 || !strings.Contains(only, "floateq") {
		t.Fatalf("-only floateq run: code %d, output %q; want the finding", code, only)
	}

	code, full2 := runLint(t, "-root", root)
	if code != 1 || full2 != full1 {
		t.Fatalf("second full run diverged: code %d\nfirst:\n%s\nsecond:\n%s", code, full1, full2)
	}

	// -rules stays as a deprecated alias for -only.
	code, alias := runLint(t, "-root", root, "-rules", "floateq")
	if code != 1 || alias != only {
		t.Fatalf("-rules alias diverged from -only: code %d\n-only:\n%s\n-rules:\n%s", code, only, alias)
	}
}
