// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result. It backs the
// `make bench-kernels` target, which records the kernel microbenchmark
// numbers in BENCH_kernels.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line, e.g.
//
//	BenchmarkMatMul/n=256-4   100   7710000 ns/op   12 B/op   5 allocs/op
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "wire_bytes/op") and
	// any other per-op/per-second figures the standard fields don't cover.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // pass through for the operator
		if r, ok := parse(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	// The remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := int64(v)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			r.AllocsPerOp = &a
		default:
			if strings.Contains(fields[i+1], "/") {
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[fields[i+1]] = v
			}
		}
	}
	if r.NsPerOp <= 0 {
		return result{}, false
	}
	return r, true
}
