// Command gtv-client runs one GTV client as a standalone process, serving
// its bottom models over TCP to a gtv-server.
//
// Each client owns a vertical slice of the dataset. For this demo the
// slice is carved from a deterministic synthetic dataset (every party
// generates the same rows from the shared seed); in a real deployment each
// party would load its own columns from storage and align rows via private
// set intersection beforehand.
//
// Usage:
//
//	gtv-client -listen :7001 -dataset adult -rows 800 -client 0 -num-clients 2 -secret 42
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/encoding"
	"repro/internal/vfl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gtv-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gtv-client", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", ":7001", "address to serve on")
		dataset    = fs.String("dataset", "adult", "dataset: loan|adult|covtype|intrusion|credit")
		rows       = fs.Int("rows", 800, "dataset rows")
		clientIdx  = fs.Int("client", 0, "this client's index (0-based)")
		numClients = fs.Int("num-clients", 2, "total clients in the federation")
		secret     = fs.Int64("secret", 0x67747673, "shared shuffle secret (must match every client; never give it to the server)")
		seed       = fs.Int64("seed", 1, "dataset seed (must match every client)")
		wire       = fs.String("wire", "gob", "wire protocol to serve: gob (net/rpc) | binary (gtvwire frames, pipelined); must match the server's -wire")
		dataDir    = fs.String("data-dir", "", "keep this client's encoded matrix in a gtvcol columnar file under this directory (flat-memory training; reruns reuse it)")
		blockCache = fs.Int("block-cache", 0, "decoded-block cache budget in MiB (0 = 256); only with -data-dir")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clientIdx < 0 || *clientIdx >= *numClients {
		return fmt.Errorf("client index %d out of range [0,%d)", *clientIdx, *numClients)
	}

	d, err := datasets.Generate(*dataset, datasets.Config{Rows: *rows, Seed: *seed})
	if err != nil {
		return err
	}
	assignment, err := core.EvenAssignment(d.Table.Cols(), *numClients)
	if err != nil {
		return err
	}
	parts, err := d.Table.VerticalSplit(assignment, *numClients)
	if err != nil {
		return err
	}
	local := parts[*clientIdx]

	coord := vfl.NewShuffleCoordinator(*secret)
	st := encoding.Storage{
		Dir:        *dataDir,
		Name:       fmt.Sprintf("client-%d", *clientIdx),
		CacheBytes: int64(*blockCache) << 20,
	}
	client, err := vfl.NewLocalClientStored(local, coord, *seed+int64(*clientIdx)*1000, st)
	if err != nil {
		return err
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *listen, err)
	}
	fmt.Printf("gtv-client %d/%d serving %d columns of %s on %s (%s wire)\n",
		*clientIdx, *numClients, local.Cols(), *dataset, lis.Addr(), *wire)
	switch *wire {
	case "gob":
		return vfl.ServeClient(lis, client)
	case "binary":
		return vfl.ServeClientWire(lis, client)
	}
	return fmt.Errorf("unknown -wire %q (want gob or binary)", *wire)
}
