package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `age,segment,income
34,a,50000
41,b,72000
29,a,41000
55,b,91000
38,a,56000
47,b,80000
33,a,47000
60,b,99000
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("writing %s: %v", name, err)
	}
	return path
}

func TestEvalSelfComparison(t *testing.T) {
	real := writeTemp(t, "real.csv", sampleCSV)
	synth := writeTemp(t, "synth.csv", sampleCSV)
	var out bytes.Buffer
	if err := run([]string{"-real", real, "-synth", synth, "-target", "segment", "-test-frac", "0.25"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "avg JSD 0.0000") {
		t.Fatalf("self comparison should have zero JSD:\n%s", s)
	}
	if !strings.Contains(s, "exact=8") {
		t.Fatalf("self comparison should report all exact DCR matches:\n%s", s)
	}
	if !strings.Contains(s, "ML utility difference") {
		t.Fatalf("missing utility section:\n%s", s)
	}
}

func TestEvalDetectsSchemaMismatch(t *testing.T) {
	real := writeTemp(t, "real.csv", sampleCSV)
	synth := writeTemp(t, "synth.csv", "age,other\n1,2\n3,4\n")
	var out bytes.Buffer
	if err := run([]string{"-real", real, "-synth", synth}, &out); err == nil {
		t.Fatal("expected column mismatch error")
	}
}

func TestEvalForcedCategorical(t *testing.T) {
	// A numeric column forced categorical participates in JSD instead of WD.
	real := writeTemp(t, "real.csv", "flag,x\n0,1.5\n1,2.5\n0,3.5\n1,4.5\n")
	synth := writeTemp(t, "synth.csv", "flag,x\n0,1.6\n1,2.4\n0,3.4\n1,4.6\n")
	var out bytes.Buffer
	if err := run([]string{"-real", real, "-synth", synth, "-categorical", "flag"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "avg JSD 0.0000") {
		t.Fatalf("identical flag marginals should give zero JSD:\n%s", out.String())
	}
}

func TestEvalMissingFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("expected required-flag error")
	}
}

func TestEvalUnknownTarget(t *testing.T) {
	real := writeTemp(t, "real.csv", sampleCSV)
	synth := writeTemp(t, "synth.csv", sampleCSV)
	var out bytes.Buffer
	if err := run([]string{"-real", real, "-synth", synth, "-target", "nope"}, &out); err == nil {
		t.Fatal("expected unknown-target error")
	}
}
