// Command gtv-eval scores a synthetic CSV against a real CSV using the
// paper's evaluation metrics: statistical similarity (avg JSD, avg WD,
// Diff.Corr), ML utility difference when a target column is named, and the
// distance-to-closest-record privacy smoke test.
//
// Column kinds are inferred: a column is categorical when any cell is
// non-numeric (or when listed in -categorical); otherwise continuous.
// Category vocabularies are shared between the two files.
//
// Usage:
//
//	gtv-eval -real train.csv -synth synthetic.csv -target income
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/encoding"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gtv-eval:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gtv-eval", flag.ContinueOnError)
	var (
		realPath    = fs.String("real", "", "real data CSV (required)")
		synthPath   = fs.String("synth", "", "synthetic data CSV (required)")
		target      = fs.String("target", "", "target column name for the ML-utility pipeline (optional)")
		categorical = fs.String("categorical", "", "comma-separated column names to force categorical")
		testFrac    = fs.Float64("test-frac", 0.25, "tail fraction of the real file held out as the ML test set")
		seed        = fs.Int64("seed", 1, "random seed for the utility classifiers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *realPath == "" || *synthPath == "" {
		return fmt.Errorf("-real and -synth are required")
	}

	realRows, header, err := readRawCSV(*realPath)
	if err != nil {
		return err
	}
	synthRows, synthHeader, err := readRawCSV(*synthPath)
	if err != nil {
		return err
	}
	if len(header) != len(synthHeader) {
		return fmt.Errorf("column count mismatch: real %d vs synthetic %d", len(header), len(synthHeader))
	}
	for j := range header {
		if header[j] != synthHeader[j] {
			return fmt.Errorf("column %d named %q in real but %q in synthetic", j, header[j], synthHeader[j])
		}
	}

	forced := map[string]bool{}
	if *categorical != "" {
		for _, name := range strings.Split(*categorical, ",") {
			forced[strings.TrimSpace(name)] = true
		}
	}
	specs, err := inferSpecs(header, [][][]string{realRows, synthRows}, forced)
	if err != nil {
		return err
	}
	realTable, err := buildTable(specs, realRows)
	if err != nil {
		return fmt.Errorf("real file: %w", err)
	}
	synthTable, err := buildTable(specs, synthRows)
	if err != nil {
		return fmt.Errorf("synthetic file: %w", err)
	}
	fmt.Fprintf(stdout, "real: %d rows, synthetic: %d rows, %d columns\n",
		realTable.Rows(), synthTable.Rows(), realTable.Cols())

	sim, err := stats.Similarity(realTable, synthTable)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "statistical similarity: avg JSD %.4f, avg WD %.4f, Diff.Corr %.3f\n",
		sim.AvgJSD, sim.AvgWD, sim.DiffCorr)

	dcr, err := stats.DistanceToClosestRecord(realTable, synthTable)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "privacy: %s\n", dcr)

	if *target != "" {
		tIdx := realTable.ColumnByName(*target)
		if tIdx < 0 {
			return fmt.Errorf("target column %q not found", *target)
		}
		if *testFrac <= 0 || *testFrac >= 1 {
			return fmt.Errorf("test-frac %v out of (0,1)", *testFrac)
		}
		cut := int(float64(realTable.Rows()) * (1 - *testFrac))
		if cut < 1 || cut >= realTable.Rows() {
			return fmt.Errorf("real file too small for test-frac %v", *testFrac)
		}
		train := realTable.SliceRows(0, cut)
		test := realTable.SliceRows(cut, realTable.Rows())
		util, err := ml.UtilityDifference(train, synthTable, test, tIdx, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "ML utility difference (real - synthetic): %s\n", util)
	}
	return nil
}

// readRawCSV loads a CSV file as strings.
func readRawCSV(path string) (rows [][]string, header []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	//lint:ignore errdrop read-only file, a Close failure cannot lose data
	defer func() { _ = f.Close() }()
	cr := csv.NewReader(f)
	all, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", path, err)
	}
	if len(all) < 2 {
		return nil, nil, fmt.Errorf("%s has no data rows", path)
	}
	return all[1:], all[0], nil
}

// inferSpecs derives a shared schema: a column is categorical when forced
// or when any cell (in any file) fails numeric parsing; vocabularies are
// the union over all files, sorted for determinism.
func inferSpecs(header []string, files [][][]string, forced map[string]bool) ([]encoding.ColumnSpec, error) {
	specs := make([]encoding.ColumnSpec, len(header))
	for j, name := range header {
		isCat := forced[name]
		vocab := map[string]bool{}
		for _, rows := range files {
			for _, row := range rows {
				if len(row) != len(header) {
					return nil, fmt.Errorf("ragged CSV row with %d cells, want %d", len(row), len(header))
				}
				if _, err := strconv.ParseFloat(row[j], 64); err != nil {
					isCat = true
				}
				vocab[row[j]] = true
			}
		}
		specs[j] = encoding.ColumnSpec{Name: name, Kind: encoding.KindContinuous}
		if isCat {
			cats := make([]string, 0, len(vocab))
			for v := range vocab {
				cats = append(cats, v)
			}
			sort.Strings(cats)
			specs[j] = encoding.ColumnSpec{Name: name, Kind: encoding.KindCategorical, Categories: cats}
		}
	}
	return specs, nil
}

// buildTable converts raw string rows into a typed table under specs.
func buildTable(specs []encoding.ColumnSpec, rows [][]string) (*encoding.Table, error) {
	catIndex := make([]map[string]int, len(specs))
	for j, s := range specs {
		if s.Kind == encoding.KindCategorical {
			catIndex[j] = make(map[string]int, len(s.Categories))
			for k, c := range s.Categories {
				catIndex[j][c] = k
			}
		}
	}
	data := tensor.New(len(rows), len(specs))
	for i, row := range rows {
		for j, s := range specs {
			if s.Kind == encoding.KindCategorical {
				k, ok := catIndex[j][row[j]]
				if !ok {
					return nil, fmt.Errorf("row %d: unknown category %q in column %q", i+1, row[j], s.Name)
				}
				data.Set(i, j, float64(k))
				continue
			}
			v, err := strconv.ParseFloat(row[j], 64)
			if err != nil {
				return nil, fmt.Errorf("row %d column %q: %w", i+1, s.Name, err)
			}
			data.Set(i, j, v)
		}
	}
	return encoding.NewTable(specs, data)
}
