// Command gtv-experiments regenerates the GTV paper's tables and figures.
//
// Usage:
//
//	gtv-experiments -exp fig8 [-rows 500] [-rounds 300] [-datasets loan,adult] [-out results.txt]
//
// Experiments: fig3, fig8, fig10, fig11, table2, fig12, fig13, table3, all.
// Absolute numbers are produced at the configured (laptop) scale; the
// paper-scale run is selected with -rows 50000 -rounds 3000 -block 256.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/vfl"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gtv-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gtv-experiments", flag.ContinueOnError)
	var (
		exp         = fs.String("exp", "all", "experiment to run: fig3|fig8|fig10|fig11|table2|fig12|fig13|table3|shuffle-attack|comm|all")
		rows        = fs.Int("rows", 500, "rows per dataset")
		rounds      = fs.Int("rounds", 300, "training rounds per cell")
		discSteps   = fs.Int("disc-steps", 3, "critic steps per round")
		batch       = fs.Int("batch", 64, "batch size")
		block       = fs.Int("block", 64, "block width (paper: 256)")
		noise       = fs.Int("noise", 24, "generator noise width (paper: 128)")
		lr          = fs.Float64("lr", 5e-4, "Adam learning rate")
		repeats     = fs.Int("repeats", 1, "repeats per cell (paper: 3)")
		parallelism = fs.Int("parallelism", 0, "concurrent cells (0 = NumCPU)")
		seed        = fs.Int64("seed", 1, "base random seed")
		datasetsArg = fs.String("datasets", "", "comma-separated dataset subset (default: all five)")
		out         = fs.String("out", "", "also append output to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := experiments.DefaultScale()
	scale.Rows = *rows
	scale.Rounds = *rounds
	scale.DiscSteps = *discSteps
	scale.BatchSize = *batch
	scale.BlockDim = *block
	scale.NoiseDim = *noise
	scale.LR = *lr
	scale.Repeats = *repeats
	scale.Parallelism = *parallelism
	scale.Seed = *seed
	if *datasetsArg != "" {
		scale.Datasets = strings.Split(*datasetsArg, ",")
	}

	w := stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening -out file: %w", err)
		}
		defer func() {
			// The file is written to throughout the run; a failed Close can
			// mean lost results, so it must not pass silently.
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "gtv-experiments: closing -out file:", cerr)
			}
		}()
		w = io.MultiWriter(stdout, f)
	}

	planG20 := vfl.Plan{DiscServer: 2, GenClient: 2} // paper's D_0^2 G_2^0
	planG02 := vfl.Plan{DiscServer: 2, GenServer: 2} // paper's D_0^2 G_0^2

	// Expensive sub-runs are cached so that "all" (and table2/table3 after
	// fig10-13) does not recompute them.
	dataPartCache := map[string]*experiments.DataPartitionResult{}
	dataPart := func(plan vfl.Plan) (*experiments.DataPartitionResult, error) {
		if r, ok := dataPartCache[plan.Name()]; ok {
			return r, nil
		}
		r, err := experiments.RunDataPartition(scale, plan)
		if err == nil {
			dataPartCache[plan.Name()] = r
		}
		return r, err
	}
	clientCountCache := map[string]*experiments.ClientCountResult{}
	clientCount := func(plan vfl.Plan) (*experiments.ClientCountResult, error) {
		if r, ok := clientCountCache[plan.Name()]; ok {
			return r, nil
		}
		r, err := experiments.RunClientCount(scale, plan, nil)
		if err == nil {
			clientCountCache[plan.Name()] = r
		}
		return r, err
	}

	runOne := func(name string) error {
		start := time.Now()
		fmt.Fprintf(w, "\n=== %s (rows=%d rounds=%d block=%d datasets=%v) ===\n",
			name, scale.Rows, scale.Rounds, scale.BlockDim, scale.Datasets)
		switch name {
		case "fig3":
			r, err := experiments.RunFig3(scale)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		case "fig8":
			r, err := experiments.RunFig8(scale)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		case "fig10":
			r, err := dataPart(planG20)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		case "fig11":
			r, err := dataPart(planG02)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		case "table2":
			r20, err := dataPart(planG20)
			if err != nil {
				return err
			}
			r02, err := dataPart(planG02)
			if err != nil {
				return err
			}
			if err := experiments.RenderTable2(w, []*experiments.DataPartitionResult{r20, r02}); err != nil {
				return err
			}
		case "fig12":
			r, err := clientCount(planG02)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		case "fig13":
			r, err := clientCount(planG20)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		case "table3":
			r20, err := clientCount(planG20)
			if err != nil {
				return err
			}
			r02, err := clientCount(planG02)
			if err != nil {
				return err
			}
			if err := experiments.RenderTable3(w, []*experiments.ClientCountResult{r20, r02}, scale.Datasets); err != nil {
				return err
			}
		case "shuffle-attack":
			r, err := experiments.RunShuffleAttack(scale)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		case "comm":
			r, err := experiments.RunCommOverhead(scale)
			if err != nil {
				return err
			}
			if err := r.Render(w); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Fprintf(w, "[%s completed in %.1fs]\n", name, time.Since(start).Seconds())
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig3", "fig8", "fig10", "fig11", "table2", "fig12", "fig13", "table3", "shuffle-attack", "comm"}
	}
	for _, name := range names {
		if err := runOne(name); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
	}
	return nil
}
