package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	var out bytes.Buffer
	err := run([]string{
		"-exp", "fig3", "-rows", "160", "-rounds", "4", "-batch", "32",
		"-block", "24", "-noise", "8", "-datasets", "loan",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Setting-C") {
		t.Fatalf("missing fig3 output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "completed") {
		t.Fatal("missing completion line")
	}
}

func TestRunCommWritesOutFile(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	outFile := filepath.Join(t.TempDir(), "results.txt")
	var out bytes.Buffer
	err := run([]string{
		"-exp", "comm", "-rows", "160", "-rounds", "4", "-batch", "32",
		"-block", "24", "-noise", "8", "-datasets", "loan", "-out", outFile,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "bytes/round") {
		t.Fatalf("missing comm output:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("expected flag error")
	}
}
