// Command gtv-server runs the GTV trusted-third-party server: it dials the
// client processes, drives Algorithm 1 over TCP, and writes the joint
// synthetic dataset.
//
// Usage:
//
//	gtv-server -clients 127.0.0.1:7001,127.0.0.1:7002 -plan D2_0G2_0 -rounds 300 -synth-out synth.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/encoding"
	"repro/internal/vfl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gtv-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gtv-server", flag.ContinueOnError)
	var (
		clientsArg = fs.String("clients", "127.0.0.1:7001,127.0.0.1:7002", "comma-separated client addresses")
		planArg    = fs.String("plan", "D2_0G2_0", "partition plan")
		rounds     = fs.Int("rounds", 300, "training rounds")
		discSteps  = fs.Int("disc-steps", 3, "critic steps per round")
		batch      = fs.Int("batch", 64, "batch size")
		block      = fs.Int("block", 64, "block width")
		noise      = fs.Int("noise", 32, "noise width")
		lr         = fs.Float64("lr", 5e-4, "learning rate")
		pac        = fs.Int("pac", 1, "PacGAN packing degree (batch must divide)")
		dpNoise    = fs.Float64("dp-noise", 0, "Gaussian DP noise std on received logits")
		seed       = fs.Int64("seed", 1, "server random seed")
		parallel   = fs.Int("parallel-clients", 0, "max clients driven concurrently per round (0 = all, 1 = sequential; results are identical)")
		callTO     = fs.Duration("call-timeout", 30*time.Second, "per-RPC deadline (0 = wait forever)")
		callTries  = fs.Int("call-retries", 2, "retries per RPC on transient transport errors")
		callWait   = fs.Duration("call-backoff", 50*time.Millisecond, "initial backoff between RPC retries (doubles per retry)")
		wire       = fs.String("wire", "gob", "wire protocol to the clients: gob (net/rpc) | binary (gtvwire frames, pipelined); must match the clients' -wire")
		wireF32    = fs.Bool("wire-f32", false, "send activations/gradients as float32 on the binary wire")
		wireTopK   = fs.Float64("wire-topk", 0, "keep only this fraction of each outbound gradient (top-k with error feedback; lossy, 0 = off)")
		wireDelta  = fs.Bool("wire-delta", false, "fetch client checkpoints as deltas against the previous fetch on the binary wire (lossless)")
		faithful   = fs.Bool("faithful-real-pass", false, "use the paper's full-local-pass index privacy mode")
		synthRows  = fs.Int("synth-rows", 500, "synthetic rows to generate after training")
		synthOut   = fs.String("synth-out", "synthetic.csv", "output CSV path")
		every      = fs.Int("log-every", 25, "print losses every N rounds")
		ckptDir    = fs.String("checkpoint-dir", "", "write atomic gtvsnap checkpoints (server + client blobs) into this directory")
		ckptEvery  = fs.Int("checkpoint-every", 1, "rounds between checkpoints when -checkpoint-dir is set")
		resume     = fs.Bool("resume", false, "restore the newest checkpoint in -checkpoint-dir before training")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := vfl.ParsePlan(*planArg)
	if err != nil {
		return err
	}

	policy := vfl.CallPolicy{
		Timeout:     *callTO,
		MaxAttempts: 1 + *callTries,
		Backoff:     *callWait,
	}
	if *wireF32 && *wire != "binary" {
		return fmt.Errorf("-wire-f32 requires -wire binary, got %q", *wire)
	}
	if *wireDelta && *wire != "binary" {
		return fmt.Errorf("-wire-delta requires -wire binary, got %q", *wire)
	}
	addrs := strings.Split(*clientsArg, ",")
	clients := make([]vfl.Client, len(addrs))
	for i, addr := range addrs {
		addr = strings.TrimSpace(addr)
		switch *wire {
		case "gob":
			proxy, err := vfl.DialClientPolicy("tcp", addr, policy)
			if err != nil {
				return err
			}
			//lint:ignore errdrop teardown of a finished training connection, nothing left to lose
			defer func() { _ = proxy.Close() }()
			clients[i] = proxy
		case "binary":
			proxy, err := vfl.DialWireClientPolicy("tcp", addr, policy)
			if err != nil {
				return err
			}
			proxy.SetFloat32(*wireF32)
			proxy.SetDelta(*wireDelta)
			//lint:ignore errdrop teardown of a finished training connection, nothing left to lose
			defer func() { _ = proxy.Close() }()
			clients[i] = proxy
		default:
			return fmt.Errorf("unknown -wire %q (want gob or binary)", *wire)
		}
		fmt.Printf("connected to client %d at %s (%s wire)\n", i, addr, *wire)
	}

	cfg := vfl.Config{
		Plan:             plan,
		Rounds:           *rounds,
		DiscSteps:        *discSteps,
		BatchSize:        *batch,
		NoiseDim:         *noise,
		BlockDim:         *block,
		LR:               *lr,
		Pac:              *pac,
		DPLogitNoise:     *dpNoise,
		Seed:             *seed,
		FaithfulRealPass: *faithful,
		Parallelism:      *parallel,
		GradTopK:         *wireTopK,
	}
	server, err := vfl.NewServer(clients, cfg)
	if err != nil {
		return err
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
		if *resume {
			r, ok, err := server.RestoreLatestCheckpoint(*ckptDir)
			if err != nil {
				return err
			}
			if ok {
				fmt.Printf("resumed from checkpoint at round %d\n", r)
			}
		}
	}
	interval := *ckptEvery
	if interval <= 0 {
		interval = 1
	}
	var ckptErr error
	fmt.Printf("training %s for %d rounds, P_r=%v\n", plan.Name(), *rounds, server.Ratios())
	err = server.Train(func(round int, dLoss, gLoss float64) {
		if *every > 0 && (round+1)%*every == 0 {
			fmt.Printf("round %4d  critic %.4f  generator %.4f\n", round+1, dLoss, gLoss)
		}
		if *ckptDir != "" && ckptErr == nil && (round+1)%interval == 0 {
			_, ckptErr = server.SaveCheckpoint(*ckptDir)
		}
	})
	if err != nil {
		return err
	}
	if ckptErr != nil {
		return fmt.Errorf("checkpointing: %w", ckptErr)
	}
	if *ckptDir != "" && server.Rounds()%interval != 0 {
		if _, err := server.SaveCheckpoint(*ckptDir); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
	}

	// Estimated payload bytes next to the measured framed bytes.
	fmt.Printf("communication: %s\n", server.CommStats())

	synth, err := server.Synthesize(*synthRows)
	if err != nil {
		return err
	}
	f, err := os.Create(*synthOut)
	if err != nil {
		return fmt.Errorf("creating %s: %w", *synthOut, err)
	}
	if err := encoding.WriteCSV(f, synth); err != nil {
		_ = f.Close() //lint:ignore errdrop the write error is the one worth reporting
		return err
	}
	// A failed Close on a written file can mean the synthetic data never
	// reached disk, so it is propagated rather than deferred away.
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", *synthOut, err)
	}
	fmt.Printf("wrote %d synthetic rows (%d columns) to %s\n", synth.Rows(), synth.Cols(), *synthOut)
	return nil
}
