package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGTVTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	synthPath := filepath.Join(t.TempDir(), "synth.csv")
	var out bytes.Buffer
	err := run([]string{
		"-dataset", "loan", "-rows", "200", "-rounds", "6", "-batch", "32",
		"-block", "24", "-noise", "8", "-log-every", "3", "-synth-out", synthPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"GTV D2_0G2_0", "statistical similarity", "ML utility difference"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(synthPath)
	if err != nil {
		t.Fatalf("reading synth csv: %v", err)
	}
	if !strings.HasPrefix(string(data), "age,") {
		t.Fatalf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunCentralizedTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("GAN training in -short mode")
	}
	var out bytes.Buffer
	err := run([]string{
		"-dataset", "loan", "-rows", "200", "-rounds", "4", "-batch", "32",
		"-block", "24", "-noise", "8", "-centralized", "-log-every", "0",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "statistical similarity") {
		t.Fatalf("missing metrics output:\n%s", out.String())
	}
}

func TestRunRejectsBadPlan(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-plan", "garbage", "-rows", "100", "-rounds", "1"}, &out); err == nil {
		t.Fatal("expected plan parse error")
	}
}

func TestRunRejectsBadDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "nope"}, &out); err == nil {
		t.Fatal("expected dataset error")
	}
}
