// Command gtv-train trains a GTV system (or the centralized baseline) on
// one of the built-in synthetic datasets, reports quality metrics, and
// optionally writes the synthetic table to CSV.
//
// Usage:
//
//	gtv-train -dataset adult -clients 2 -plan D2_0G2_0 -rounds 400 -synth-out synth.csv
//	gtv-train -dataset loan -centralized
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/encoding"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/vfl"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gtv-train:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gtv-train", flag.ContinueOnError)
	var (
		dataset     = fs.String("dataset", "adult", "dataset: loan|adult|covtype|intrusion|credit")
		rows        = fs.Int("rows", 1000, "dataset rows")
		clients     = fs.Int("clients", 2, "number of VFL clients")
		planArg     = fs.String("plan", "D2_0G2_0", "partition plan, e.g. D2_0G0_2")
		centralized = fs.Bool("centralized", false, "train the centralized baseline instead of GTV")
		rounds      = fs.Int("rounds", 400, "training rounds")
		discSteps   = fs.Int("disc-steps", 3, "critic steps per round")
		batch       = fs.Int("batch", 64, "batch size")
		block       = fs.Int("block", 64, "block width")
		noise       = fs.Int("noise", 32, "noise width")
		lr          = fs.Float64("lr", 5e-4, "learning rate")
		pac         = fs.Int("pac", 1, "PacGAN packing degree (batch must divide)")
		dpNoise     = fs.Float64("dp-noise", 0, "Gaussian DP noise std on exchanged logits (GTV only)")
		seed        = fs.Int64("seed", 1, "random seed")
		parallel    = fs.Int("parallel-clients", 0, "max clients driven concurrently per round (0 = all, 1 = sequential; results are identical)")
		wire        = fs.String("wire", "local", "client transport (GTV only): local (in-process) | gob (net/rpc over TCP loopback) | binary (gtvwire frames over TCP loopback)")
		wireF32     = fs.Bool("wire-f32", false, "send activations/gradients as float32 on the binary wire (halves boundary traffic, breaks exact cross-transport reproducibility)")
		wireTopK    = fs.Float64("wire-topk", 0, "keep only this fraction of each outbound gradient (top-k with error feedback; lossy, 0 = off)")
		wireDelta   = fs.Bool("wire-delta", false, "fetch client checkpoints as deltas against the previous fetch (binary wire only, lossless)")
		faithful    = fs.Bool("faithful-real-pass", false, "use the paper's full-local-pass index privacy mode")
		synthOut    = fs.String("synth-out", "", "write synthetic data to this CSV file")
		every       = fs.Int("log-every", 50, "print losses every N rounds")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile (taken after training) to this file")
		ckptDir     = fs.String("checkpoint-dir", "", "write atomic gtvsnap checkpoints into this directory")
		ckptEvery   = fs.Int("checkpoint-every", 1, "rounds between checkpoints when -checkpoint-dir is set")
		resume      = fs.Bool("resume", false, "restore the newest checkpoint in -checkpoint-dir before training")
		dataDir     = fs.String("data-dir", "", "keep each party's encoded matrix in a gtvcol columnar file under this directory (flat-memory out-of-core training; reruns reuse the files)")
		blockCache  = fs.Int("block-cache", 0, "decoded-block cache budget per party in MiB (0 = 256); only with -data-dir")
		skipEval    = fs.Bool("skip-eval", false, "skip the similarity/utility evaluation after training")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *cpuProfile, err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "gtv-train: closing CPU profile:", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gtv-train: creating heap profile:", err)
				return
			}
			runtime.GC() // flush dead objects so the profile shows live retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gtv-train: writing heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "gtv-train: closing heap profile:", err)
			}
		}()
	}

	// The raw train split is identified by everything that determines its
	// rows; with -data-dir, a centralized -skip-eval rerun whose stored
	// table carries the same tag skips dataset generation entirely (the
	// flat-memory path: nothing row-scaled is ever materialized).
	sourceTag := fmt.Sprintf("%s:rows=%d:seed=%d:split=0.2", *dataset, *rows, *seed)
	rawStore := encoding.Storage{Dir: *dataDir, Name: "train", CacheBytes: int64(*blockCache) << 20}
	var (
		train, test *encoding.Table
		target      int
	)
	if *dataDir != "" && *centralized && *skipEval {
		if t, tag, err := encoding.OpenRawTable(rawStore); err == nil {
			if tag == sourceTag {
				train = t
				defer func() {
					//lint:ignore errdrop teardown of a read-only store at exit
					_ = t.Close()
				}()
				fmt.Fprintf(stdout, "dataset %s: %d train rows, %d columns (stored, %s)\n",
					*dataset, train.Rows(), train.Cols(), rawStore.RawPath())
			} else {
				//lint:ignore errdrop the stale store is simply regenerated
				_ = t.Close()
			}
		}
	}
	if train == nil {
		d, err := datasets.Generate(*dataset, datasets.Config{Rows: *rows, Seed: *seed})
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(*seed))
		if train, test, err = d.TrainTestSplit(rng, 0.2); err != nil {
			return err
		}
		target = d.Target
		fmt.Fprintf(stdout, "dataset %s: %d train rows, %d test rows, %d columns\n",
			*dataset, train.Rows(), test.Rows(), train.Cols())
		if *dataDir != "" && *centralized {
			if err := encoding.WriteRawTable(rawStore, train, sourceTag); err != nil {
				return err
			}
		}
	}

	opts := core.DefaultOptions()
	opts.Rounds = *rounds
	opts.DiscSteps = *discSteps
	opts.BatchSize = *batch
	opts.BlockDim = *block
	opts.NoiseDim = *noise
	opts.LR = *lr
	opts.Pac = *pac
	opts.DPLogitNoise = *dpNoise
	opts.Seed = *seed
	opts.Parallelism = *parallel
	opts.Transport = *wire
	opts.WireFloat32 = *wireF32
	opts.WireTopK = *wireTopK
	opts.WireDelta = *wireDelta
	opts.FaithfulRealPass = *faithful
	opts.CheckpointDir = *ckptDir
	opts.CheckpointEvery = *ckptEvery
	opts.Resume = *resume
	opts.DataDir = *dataDir
	opts.BlockCacheMB = *blockCache

	progress := func(round int, dLoss, gLoss float64) {
		if *every > 0 && (round+1)%*every == 0 {
			fmt.Fprintf(stdout, "round %4d  critic %.4f  generator %.4f\n", round+1, dLoss, gLoss)
		}
	}

	// With evaluation skipped and no output file, the synthesized table
	// would be discarded unread; skipping the full-table generator pass
	// keeps -skip-eval runs' peak memory bounded by training, not by an
	// n-row synthesis no one looks at.
	wantSynth := !*skipEval || *synthOut != ""
	var synth *encoding.Table
	trainStart := time.Now()
	if *centralized {
		c, err := core.NewCentralized(train, opts)
		if err != nil {
			return err
		}
		//lint:ignore errdrop teardown of the data plane at exit
		defer func() { _ = c.Close() }()
		trainCB, finish := progress, func() error { return nil }
		if *ckptDir != "" {
			if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
				return fmt.Errorf("checkpoint dir: %w", err)
			}
			if *resume {
				r, ok, err := c.RestoreLatestCheckpoint(*ckptDir)
				if err != nil {
					return err
				}
				if ok {
					fmt.Fprintf(stdout, "resumed centralized training at round %d\n", r)
				}
			}
			trainCB, finish = withCheckpoints(c, *ckptDir, *ckptEvery, progress)
		}
		if err := c.Train(trainCB); err != nil {
			return err
		}
		if err := finish(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "training: %d rounds in %s\n", *rounds, time.Since(trainStart))
		if wantSynth {
			if synth, err = c.Synthesize(train.Rows()); err != nil {
				return err
			}
		}
	} else {
		plan, err := vfl.ParsePlan(*planArg)
		if err != nil {
			return err
		}
		opts.Plan = plan
		assignment, err := core.EvenAssignment(train.Cols(), *clients)
		if err != nil {
			return err
		}
		g, err := core.NewFromAssignment(train, assignment, *clients, opts)
		if err != nil {
			return err
		}
		//lint:ignore errdrop teardown of finished loopback transports, nothing left to lose
		defer func() { _ = g.Close() }()
		fmt.Fprintf(stdout, "GTV %s with %d clients over %q transport, P_r=%v\n", plan.Name(), *clients, *wire, g.Ratios())
		if *resume && g.Rounds() > 0 {
			fmt.Fprintf(stdout, "resumed federated training at round %d\n", g.Rounds())
		}
		if err := g.Train(progress); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "training: %d rounds in %s\n", *rounds, time.Since(trainStart))
		// Estimate (8 B/element payload model) and, on a network transport,
		// the measured framed bytes side by side.
		fmt.Fprintf(stdout, "communication: %s\n", g.CommStats())
		if wantSynth {
			if synth, err = g.Synthesize(train.Rows()); err != nil {
				return err
			}
			// The synthetic column order follows the assignment; restore the
			// original order for evaluation and output.
			order := make([]int, 0, train.Cols())
			for p := 0; p < *clients; p++ {
				for j, owner := range assignment {
					if owner == p {
						order = append(order, j)
					}
				}
			}
			inverse := make([]int, len(order))
			for pos, col := range order {
				inverse[col] = pos
			}
			if synth, err = synth.SelectColumns(inverse); err != nil {
				return err
			}
		}
	}

	if !*skipEval {
		sim, err := stats.Similarity(train, synth)
		if err != nil {
			return err
		}
		util, err := ml.UtilityDifference(train, synth, test, target, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "statistical similarity: avg JSD %.4f, avg WD %.4f, Diff.Corr %.3f\n",
			sim.AvgJSD, sim.AvgWD, sim.DiffCorr)
		fmt.Fprintf(stdout, "ML utility difference (real - synthetic): %s\n", util)
	}

	if *synthOut != "" {
		f, err := os.Create(*synthOut)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *synthOut, err)
		}
		if err := encoding.WriteCSV(f, synth); err != nil {
			_ = f.Close() //lint:ignore errdrop the write error is the one worth reporting
			return err
		}
		// A failed Close on a written file can mean the synthetic data never
		// reached disk, so it is propagated rather than deferred away.
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", *synthOut, err)
		}
		fmt.Fprintf(stdout, "synthetic data written to %s\n", *synthOut)
	}
	return nil
}

// withCheckpoints wraps the centralized trainer's progress callback so a
// checkpoint lands every `every` rounds; the returned finish func reports
// the first failed write and covers the final round when it falls off the
// interval.
func withCheckpoints(c *core.Centralized, dir string, every int, progress func(int, float64, float64)) (func(int, float64, float64), func() error) {
	if every <= 0 {
		every = 1
	}
	var ckptErr error
	cb := func(round int, dLoss, gLoss float64) {
		if progress != nil {
			progress(round, dLoss, gLoss)
		}
		if ckptErr == nil && (round+1)%every == 0 {
			_, ckptErr = c.SaveCheckpoint(dir)
		}
	}
	finish := func() error {
		if ckptErr != nil {
			return fmt.Errorf("checkpointing: %w", ckptErr)
		}
		if c.Round()%every != 0 {
			if _, err := c.SaveCheckpoint(dir); err != nil {
				return fmt.Errorf("final checkpoint: %w", err)
			}
		}
		return nil
	}
	return cb, finish
}
